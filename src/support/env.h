// Validated environment-variable parsing with warn-and-fall-back
// semantics, shared by every FIXFUSE_* knob (FIXFUSE_FULL,
// FIXFUSE_THREADS, FIXFUSE_INTERP, FIXFUSE_JSON). One implementation so
// the tolerance rules stay uniform: an unset variable silently uses the
// fallback, a malformed value warns on stderr (in one common format) and
// uses the fallback - a bad knob must never abort a bench run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fixfuse::support::env {

/// Case-insensitive conventional truthiness: 1/true/yes/on => true;
/// empty/0/false/no/off => false; anything else nullopt.
std::optional<bool> parseTruthy(std::string_view v);

/// Warn on stderr in the uniform format:
///   warning: unrecognized <var> value '<value>' (expected <expected>);
///   <fallbackAction>
/// With oncePerVar, at most one warning per variable name per process.
/// Thread-safe: the dedup check and the write happen under one lock, so
/// concurrent callers (e.g. the bench worker pool) can neither tear nor
/// duplicate a warning.
void warnInvalid(const char* var, const char* value, const char* expected,
                 const char* fallbackAction, bool oncePerVar = false);

/// Print "warning: <message>" on stderr at most once per `key` per
/// process. The dedup set and the write share one lock (same discipline
/// as warnInvalid), so racing threads emit exactly one intact line.
/// Shared by the interpreter's native-backend fallback and the pipeline
/// native executor so the same failure warns once across both sites.
void warnOncePerProcess(const std::string& key, const std::string& message);

/// Truthy env var: unset => fallback; malformed => warn + fallback.
/// `fallbackAction` names what the fallback does in the warning (e.g.
/// "running the reduced sweep").
bool truthy(const char* var, bool fallback, const char* fallbackAction);

/// Complete positive decimal integer in [1, max]: unset => fallback;
/// anything else - zero/negative, partial parses like "12abc", leading
/// or trailing whitespace, a "+" sign, or out-of-range values like
/// "99999999999" - warns once per variable and uses the fallback.
std::uint32_t positiveInt(const char* var, std::uint32_t max,
                          std::uint32_t fallback, const char* expected,
                          const char* fallbackAction);

/// Complete positive decimal number in (0, max]: digits with at most
/// one '.' (no sign, no whitespace, no exponent). Unset => fallback;
/// anything else - "abc", "1.05x", "-1", "+2", "1e3", ".", "0", values
/// above max - warns once per variable and uses the fallback. Same
/// strictness discipline as positiveInt, for FIXFUSE_PARALLEL_THRESHOLD.
double positiveDouble(const char* var, double max, double fallback,
                      const char* expected, const char* fallbackAction);

/// Free-form string env var (no validation to apply): unset or empty =>
/// fallback. Used by FIXFUSE_CC / FIXFUSE_CFLAGS, where any non-empty
/// value is a legitimate compiler invocation.
std::string stringOr(const char* var, const char* fallback);

}  // namespace fixfuse::support::env
