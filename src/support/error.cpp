#include "support/error.h"

namespace fixfuse {

void throwInternal(const char* file, int line, const std::string& msg) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) + ": " +
                      msg);
}

}  // namespace fixfuse
