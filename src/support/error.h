// Error types and checking macros shared by all fixfuse modules.
//
// Philosophy: programming errors (violated preconditions) throw
// `InternalError`; inputs the library cannot handle (non-affine constructs
// outside the supported escape hatches, polyhedral operations whose exact
// answer cannot be certified) throw `UnsupportedError` with a diagnostic.
// Callers that can degrade gracefully catch `UnsupportedError`.
#pragma once

#include <stdexcept>
#include <string>

namespace fixfuse {

/// Base class of all exceptions thrown by fixfuse.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A violated invariant or precondition: a bug in the caller or in fixfuse.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

/// Input outside the supported fragment (e.g. a polyhedral operation whose
/// exact result cannot be certified by the lightweight machinery).
class UnsupportedError : public Error {
 public:
  explicit UnsupportedError(const std::string& what)
      : Error("unsupported: " + what) {}
};

/// Integer overflow detected by checked arithmetic.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what)
      : Error("integer overflow: " + what) {}
};

[[noreturn]] void throwInternal(const char* file, int line,
                                const std::string& msg);

}  // namespace fixfuse

/// Always-on invariant check (also in release builds: the polyhedral and
/// transformation code is correctness-critical and cheap relative to the
/// simulations it drives).
#define FIXFUSE_CHECK(cond, msg)                                   \
  do {                                                             \
    if (!(cond)) ::fixfuse::throwInternal(__FILE__, __LINE__,      \
                                          std::string(msg));       \
  } while (0)

#define FIXFUSE_UNREACHABLE(msg) \
  ::fixfuse::throwInternal(__FILE__, __LINE__, std::string("unreachable: ") + (msg))
