#include "support/intmatrix.h"

#include <sstream>

#include "support/checked.h"
#include "support/error.h"
#include "support/rational.h"

namespace fixfuse {

IntMatrix::IntMatrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            0) {
  FIXFUSE_CHECK(rows >= 0 && cols >= 0, "negative matrix dimension");
}

IntMatrix::IntMatrix(
    std::initializer_list<std::initializer_list<std::int64_t>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<std::size_t>(rows_) *
                static_cast<std::size_t>(cols_));
  for (const auto& row : rows) {
    FIXFUSE_CHECK(static_cast<int>(row.size()) == cols_,
                  "ragged initializer for IntMatrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

IntMatrix IntMatrix::identity(int n) {
  IntMatrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IntMatrix IntMatrix::permutation(const std::vector<int>& perm) {
  int n = static_cast<int>(perm.size());
  IntMatrix m(n, n);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    FIXFUSE_CHECK(perm[static_cast<std::size_t>(i)] >= 0 &&
                      perm[static_cast<std::size_t>(i)] < n,
                  "permutation index out of range");
    FIXFUSE_CHECK(!seen[static_cast<std::size_t>(
                      perm[static_cast<std::size_t>(i)])],
                  "duplicate permutation index");
    seen[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = true;
    m.at(i, perm[static_cast<std::size_t>(i)]) = 1;
  }
  return m;
}

std::int64_t& IntMatrix::at(int r, int c) {
  FIXFUSE_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

std::int64_t IntMatrix::at(int r, int c) const {
  FIXFUSE_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

IntMatrix IntMatrix::operator*(const IntMatrix& o) const {
  FIXFUSE_CHECK(cols_ == o.rows_, "matrix shape mismatch in multiply");
  IntMatrix r(rows_, o.cols_);
  for (int i = 0; i < rows_; ++i)
    for (int k = 0; k < cols_; ++k) {
      std::int64_t aik = at(i, k);
      if (aik == 0) continue;
      for (int j = 0; j < o.cols_; ++j)
        r.at(i, j) = checkedAdd(r.at(i, j), checkedMul(aik, o.at(k, j)));
    }
  return r;
}

std::vector<std::int64_t> IntMatrix::apply(
    const std::vector<std::int64_t>& v) const {
  FIXFUSE_CHECK(static_cast<int>(v.size()) == cols_,
                "vector length mismatch in apply");
  std::vector<std::int64_t> r(static_cast<std::size_t>(rows_), 0);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j)
      r[static_cast<std::size_t>(i)] =
          checkedAdd(r[static_cast<std::size_t>(i)],
                     checkedMul(at(i, j), v[static_cast<std::size_t>(j)]));
  return r;
}

bool IntMatrix::operator==(const IntMatrix& o) const {
  return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
}

std::int64_t IntMatrix::determinant() const {
  FIXFUSE_CHECK(rows_ == cols_, "determinant of non-square matrix");
  int n = rows_;
  if (n == 0) return 1;
  // Fraction-free Bareiss elimination: all intermediate divisions are exact.
  IntMatrix m = *this;
  std::int64_t sign = 1;
  std::int64_t prev = 1;
  for (int k = 0; k < n - 1; ++k) {
    if (m.at(k, k) == 0) {
      int pivot = -1;
      for (int i = k + 1; i < n; ++i)
        if (m.at(i, k) != 0) {
          pivot = i;
          break;
        }
      if (pivot < 0) return 0;
      for (int j = 0; j < n; ++j) std::swap(m.at(k, j), m.at(pivot, j));
      sign = -sign;
    }
    for (int i = k + 1; i < n; ++i)
      for (int j = k + 1; j < n; ++j) {
        std::int64_t num = checkedSub(checkedMul(m.at(i, j), m.at(k, k)),
                                      checkedMul(m.at(i, k), m.at(k, j)));
        FIXFUSE_CHECK(num % prev == 0, "Bareiss division not exact");
        m.at(i, j) = num / prev;
      }
    prev = m.at(k, k);
  }
  return checkedMul(sign, m.at(n - 1, n - 1));
}

bool IntMatrix::isUnimodular() const {
  if (rows_ != cols_) return false;
  std::int64_t d = determinant();
  return d == 1 || d == -1;
}

IntMatrix IntMatrix::unimodularInverse() const {
  FIXFUSE_CHECK(rows_ == cols_, "inverse of non-square matrix");
  std::int64_t det = determinant();
  FIXFUSE_CHECK(det == 1 || det == -1, "matrix is not unimodular");
  int n = rows_;
  // Gauss-Jordan over rationals; the result is integral because det = +-1.
  std::vector<std::vector<Rational>> aug(
      static_cast<std::size_t>(n),
      std::vector<Rational>(static_cast<std::size_t>(2 * n), Rational(0)));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j)
      aug[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          Rational(at(i, j));
    aug[static_cast<std::size_t>(i)][static_cast<std::size_t>(n + i)] =
        Rational(1);
  }
  for (int col = 0; col < n; ++col) {
    int pivot = -1;
    for (int r = col; r < n; ++r)
      if (aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] !=
          Rational(0)) {
        pivot = r;
        break;
      }
    FIXFUSE_CHECK(pivot >= 0, "singular matrix in unimodularInverse");
    std::swap(aug[static_cast<std::size_t>(col)],
              aug[static_cast<std::size_t>(pivot)]);
    Rational p =
        aug[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    for (int j = 0; j < 2 * n; ++j)
      aug[static_cast<std::size_t>(col)][static_cast<std::size_t>(j)] /= p;
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      Rational f =
          aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)];
      if (f == Rational(0)) continue;
      for (int j = 0; j < 2 * n; ++j)
        aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] -=
            f * aug[static_cast<std::size_t>(col)][static_cast<std::size_t>(j)];
    }
  }
  IntMatrix inv(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      Rational v =
          aug[static_cast<std::size_t>(i)][static_cast<std::size_t>(n + j)];
      FIXFUSE_CHECK(v.isInteger(), "non-integer inverse entry");
      inv.at(i, j) = v.num();
    }
  return inv;
}

std::string IntMatrix::str() const {
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < rows_; ++i) {
    if (i) os << "; ";
    for (int j = 0; j < cols_; ++j) {
      if (j) os << " ";
      os << at(i, j);
    }
  }
  os << "]";
  return os.str();
}

}  // namespace fixfuse
