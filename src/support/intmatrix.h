// Small dense integer matrices.
//
// Used to represent loop-transformation matrices (skewing, permutation,
// general unimodular transforms). Sizes are tiny (loop depth x loop depth),
// so a simple row-major vector<int64> is the right representation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fixfuse {

class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(int rows, int cols);
  IntMatrix(std::initializer_list<std::initializer_list<std::int64_t>> rows);

  static IntMatrix identity(int n);
  /// Permutation matrix P such that (P x)_i = x_{perm[i]}.
  static IntMatrix permutation(const std::vector<int>& perm);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  std::int64_t& at(int r, int c);
  std::int64_t at(int r, int c) const;

  IntMatrix operator*(const IntMatrix& o) const;
  std::vector<std::int64_t> apply(const std::vector<std::int64_t>& v) const;

  bool operator==(const IntMatrix& o) const;

  /// Determinant via fraction-free Bareiss elimination. Square only.
  std::int64_t determinant() const;
  /// True iff square with determinant +-1.
  bool isUnimodular() const;
  /// Exact inverse of a unimodular matrix (integer entries). Throws
  /// InternalError if the matrix is not unimodular.
  IntMatrix unimodularInverse() const;

  std::string str() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::int64_t> data_;
};

}  // namespace fixfuse
