#include "support/json.h"

#include <cmath>
#include <cstdio>

#include "support/error.h"

namespace fixfuse::support {

Json& Json::set(const std::string& key, Json v) {
  FIXFUSE_CHECK(kind_ == Kind::Object, "Json::set on a non-object");
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  FIXFUSE_CHECK(kind_ == Kind::Array, "Json::push on a non-array");
  arr_.push_back(std::move(v));
  return *this;
}

namespace {

void writeEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newlineIndent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  char buf[40];
  switch (kind_) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::Int:
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(int_));
      out += buf;
      return;
    case Kind::Double:
      if (!std::isfinite(double_)) {
        out += "null";  // RFC 8259 has no NaN/Inf
        return;
      }
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      out += buf;
      return;
    case Kind::String:
      writeEscaped(out, str_);
      return;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newlineIndent(out, indent, depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      newlineIndent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newlineIndent(out, indent, depth + 1);
        writeEscaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.write(out, indent, depth + 1);
      }
      newlineIndent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::str(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace fixfuse::support
