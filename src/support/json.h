// Minimal JSON value builder with deterministic serialization.
//
// Used by the bench binaries' machine-readable output (BENCH_<name>.json):
// objects preserve insertion order, doubles are printed with "%.17g"
// (round-trippable and byte-stable across runs and thread counts), and
// non-finite doubles serialize as null per RFC 8259. Writing only - there
// is deliberately no parser here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace fixfuse::support {

class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(int v) : kind_(Kind::Int), int_(v) {}
  Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
  Json(std::uint64_t v)
      : kind_(Kind::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : kind_(Kind::Double), double_(v) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }

  /// Object field (insertion order preserved; duplicate keys overwrite).
  Json& set(const std::string& key, Json v);
  /// Array element.
  Json& push(Json v);

  /// Compact serialization. `indent` > 0 pretty-prints with that many
  /// spaces per level (stable output either way).
  std::string str(int indent = 0) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace fixfuse::support
