#include "support/protocol.h"

#include <cerrno>
#include <cstring>

#if defined(__has_include)
#if __has_include(<unistd.h>)
#include <unistd.h>
#define FIXFUSE_HAVE_UNISTD 1
#endif
#endif

namespace fixfuse::support {

#ifndef FIXFUSE_HAVE_UNISTD

bool readFrame(int, std::string*, std::size_t) {
  throw ProtocolError("frame transport unsupported on this platform");
}
void writeFrame(int, std::string_view, std::size_t) {
  throw ProtocolError("frame transport unsupported on this platform");
}

#else

namespace {

/// Read exactly n bytes. Returns the count read before EOF (== n on
/// success); throws on I/O errors. EINTR retries.
std::size_t readFully(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got;  // EOF
    if (errno == EINTR) continue;
    throw ProtocolError(std::string("read failed: ") + std::strerror(errno));
  }
  return got;
}

void writeFully(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t r = ::write(fd, buf + put, n - put);
    if (r >= 0) {
      put += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    throw ProtocolError(std::string("write failed: ") + std::strerror(errno));
  }
}

}  // namespace

bool readFrame(int fd, std::string* payload, std::size_t maxBytes) {
  unsigned char hdr[4];
  const std::size_t got = readFully(fd, reinterpret_cast<char*>(hdr), 4);
  if (got == 0) return false;  // clean EOF between frames
  if (got < 4) throw ProtocolError("EOF inside frame header");
  const std::size_t len = (static_cast<std::size_t>(hdr[0]) << 24) |
                          (static_cast<std::size_t>(hdr[1]) << 16) |
                          (static_cast<std::size_t>(hdr[2]) << 8) |
                          static_cast<std::size_t>(hdr[3]);
  if (len > maxBytes)
    throw ProtocolError("frame of " + std::to_string(len) +
                        " bytes exceeds the " + std::to_string(maxBytes) +
                        "-byte ceiling");
  payload->resize(len);
  if (len && readFully(fd, payload->data(), len) < len)
    throw ProtocolError("EOF inside frame payload");
  return true;
}

void writeFrame(int fd, std::string_view payload, std::size_t maxBytes) {
  if (payload.size() > maxBytes)
    throw ProtocolError("refusing to send a " +
                        std::to_string(payload.size()) + "-byte frame (max " +
                        std::to_string(maxBytes) + ")");
  const std::size_t len = payload.size();
  const unsigned char hdr[4] = {static_cast<unsigned char>(len >> 24),
                                static_cast<unsigned char>(len >> 16),
                                static_cast<unsigned char>(len >> 8),
                                static_cast<unsigned char>(len)};
  writeFully(fd, reinterpret_cast<const char*>(hdr), 4);
  if (len) writeFully(fd, payload.data(), len);
}

#endif  // FIXFUSE_HAVE_UNISTD

}  // namespace fixfuse::support
