// Length-prefixed frame transport for the compile server.
//
// One frame = a 4-byte big-endian payload length followed by the
// payload bytes. Works over any byte-stream fd pair: an AF_UNIX
// socket, a socketpair, or stdin/stdout (fixfuse-serve --stdio).
// Reads retry on EINTR and loop over short reads/writes; a frame
// announcing more than `maxBytes` is rejected before any allocation,
// so a hostile or corrupted peer cannot make the server balloon.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "support/error.h"

namespace fixfuse::support {

/// Malformed framing or transport failure (short frame, oversized
/// announcement, I/O error). Clean EOF between frames is NOT an error -
/// readFrame reports it as false.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error("protocol: " + what) {}
};

/// Default per-frame ceiling: generous for any program text or emitted
/// C this repo produces, small enough to bound a request's memory.
constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// Read exactly one frame from `fd` into *payload. Returns false on a
/// clean EOF before the first header byte; throws ProtocolError on a
/// torn header/payload, an oversized announcement, or a read error.
bool readFrame(int fd, std::string* payload,
               std::size_t maxBytes = kMaxFrameBytes);

/// Write one frame. Throws ProtocolError on oversize or write error.
void writeFrame(int fd, std::string_view payload,
                std::size_t maxBytes = kMaxFrameBytes);

}  // namespace fixfuse::support
