#include "support/rational.h"

#include "support/checked.h"
#include "support/error.h"

namespace fixfuse {

Rational::Rational(std::int64_t num) : num_(num), den_(1) {}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  FIXFUSE_CHECK(den != 0, "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = checkedNeg(num_);
    den_ = checkedNeg(den_);
  }
  std::int64_t g = gcd64(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

std::int64_t Rational::floor() const { return floorDiv(num_, den_); }

std::int64_t Rational::ceil() const { return ceilDiv(num_, den_); }

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checkedNeg(num_);
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  // Use the lcm of denominators to keep intermediates small.
  std::int64_t g = gcd64(den_, o.den_);
  std::int64_t l = checkedMul(den_ / g, o.den_);
  std::int64_t a = checkedMul(num_, l / den_);
  std::int64_t b = checkedMul(o.num_, l / o.den_);
  return Rational(checkedAdd(a, b), l);
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-cancel before multiplying to delay overflow.
  std::int64_t g1 = gcd64(num_, o.den_);
  std::int64_t g2 = gcd64(o.num_, den_);
  return Rational(checkedMul(num_ / g1, o.num_ / g2),
                  checkedMul(den_ / g2, o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  FIXFUSE_CHECK(o.num_ != 0, "rational division by zero");
  return *this * Rational(o.den_, o.num_);
}

bool Rational::operator<(const Rational& o) const {
  // a/b < c/d  <=>  a*d < c*b   (b, d > 0 by canonical form)
  return checkedMul(num_, o.den_) < checkedMul(o.num_, den_);
}

std::string Rational::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace fixfuse
