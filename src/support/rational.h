// Exact rational arithmetic on 64-bit numerator/denominator.
//
// Used by the Fourier-Motzkin core when combining bound pairs and by the
// LRW tile-size model. Always stored in canonical form: gcd(num, den) == 1
// and den > 0. All operations overflow-check through checked.h.
#pragma once

#include <cstdint>
#include <string>

namespace fixfuse {

class Rational {
 public:
  constexpr Rational() = default;
  Rational(std::int64_t num);  // NOLINT(google-explicit-constructor)
  Rational(std::int64_t num, std::int64_t den);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool isInteger() const { return den_ == 1; }
  /// Largest integer <= *this.
  std::int64_t floor() const;
  /// Smallest integer >= *this.
  std::int64_t ceil() const;

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return !(*this < o); }

  double toDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  std::string str() const;

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace fixfuse
