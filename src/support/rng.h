// Deterministic random number generation for tests, benchmarks and
// workload initialisation. SplitMix64: tiny, fast, reproducible across
// platforms (unlike std::mt19937 distributions, whose output is
// implementation-defined for floating point).
#pragma once

#include <cstdint>

namespace fixfuse {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double nextDouble(double lo, double hi) {
    return lo + (hi - lo) * nextDouble();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t nextBounded(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    nextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace fixfuse
