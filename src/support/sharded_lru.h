// Sharded, bounded, LRU-evicting build cache.
//
// The engine-level caches (planner::Plan + pipeline products, compiled
// NativeModules) share one discipline: key -> value memoization where
// the build step is expensive (replan, recompile) and concurrent
// requests for the same key must perform exactly one build. The cache
// is sharded by key hash (the consing-arena idiom from ir::Context) so
// unrelated keys never contend; each shard holds its own mutex, an LRU
// list and an index into it. The shard mutex is held *across the build
// callback* on purpose: losers of a same-key race block until the
// winner's build lands and then take the hit. Same-shard different-key
// requests serialize too - acceptable because builds are rare after
// warmup and correctness (one build per key) is the contract.
//
// Bounded: `bound` total entries split evenly across min(16, bound)
// shards; each shard evicts its least-recently-used entry past its
// per-shard cap. A build that throws caches nothing and propagates
// (callers that want failure-caching wrap the error into the value).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fixfuse::support {

/// Aggregate counters across all shards. `buildSeconds` is the total
/// wall-clock spent inside build callbacks (misses only).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  double buildSeconds = 0;
};

template <class K, class V, class Hash = std::hash<K>>
class ShardedLruCache {
 public:
  /// `bound` is the total entry capacity (clamped to >= 1). Shard count
  /// is min(16, bound) so a tiny bound still evicts deterministically
  /// (bound 1 == one shard holding one entry).
  explicit ShardedLruCache(std::size_t bound)
      : bound_(std::max<std::size_t>(1, bound)) {
    const std::size_t nShards =
        std::min<std::size_t>(kMaxShards, bound_);
    perShardCap_ = std::max<std::size_t>(1, bound_ / nShards);
    shards_.reserve(nShards);
    for (std::size_t i = 0; i < nShards; ++i)
      shards_.push_back(std::make_unique<Shard>());
  }

  /// Return the cached value for `key`, or run `build` and cache its
  /// result. Exactly one build runs per key even under concurrent
  /// access (the shard lock is held across the build; losers wait).
  /// `cached`, when given, reports whether this call was a hit. If
  /// `build` throws, nothing is cached and the exception propagates.
  V getOrBuild(const K& key, const std::function<V()>& build,
               bool* cached = nullptr) {
    Shard& sh = shardFor(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.index.find(key);
    if (it != sh.index.end()) {
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      ++sh.stats.hits;
      if (cached) *cached = true;
      return it->second->second;
    }
    if (cached) *cached = false;
    ++sh.stats.misses;
    const double t0 = nowSeconds();
    V value = build();
    sh.stats.buildSeconds += nowSeconds() - t0;
    sh.lru.emplace_front(key, std::move(value));
    sh.index.emplace(key, sh.lru.begin());
    while (sh.lru.size() > perShardCap_) {
      sh.index.erase(sh.lru.back().first);
      sh.lru.pop_back();
      ++sh.stats.evictions;
    }
    return sh.lru.front().second;
  }

  /// Counters summed over all shards (a snapshot; each shard is locked
  /// briefly in turn).
  CacheStats stats() const {
    CacheStats total;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      total.hits += sh->stats.hits;
      total.misses += sh->stats.misses;
      total.evictions += sh->stats.evictions;
      total.buildSeconds += sh->stats.buildSeconds;
    }
    return total;
  }

  /// Entries currently resident (snapshot).
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      n += sh->lru.size();
    }
    return n;
  }

  std::size_t bound() const { return bound_; }
  std::size_t shardCount() const { return shards_.size(); }
  std::size_t perShardCap() const { return perShardCap_; }

 private:
  static constexpr std::size_t kMaxShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<K, V>> lru;  // front = most recently used
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator,
                       Hash>
        index;
    CacheStats stats;
  };

  static double nowSeconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  Shard& shardFor(const K& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  std::size_t bound_;
  std::size_t perShardCap_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fixfuse::support
