#include "support/str.h"

namespace fixfuse {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  return joinMap(parts, sep, [](const std::string& s) { return s; });
}

std::string repeat(const std::string& s, int n) {
  std::string out;
  out.reserve(s.size() * static_cast<std::size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out += s;
  return out;
}

}  // namespace fixfuse
