// Small string helpers used by printers and diagnostics.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace fixfuse {

/// Join the elements of `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Join arbitrary streamable items mapped through `fn`.
template <typename Range, typename Fn>
std::string joinMap(const Range& range, const std::string& sep, Fn fn) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : range) {
    if (!first) os << sep;
    first = false;
    os << fn(item);
  }
  return os.str();
}

/// Repeat a string `n` times (indentation helper).
std::string repeat(const std::string& s, int n);

}  // namespace fixfuse
