#include "support/symbol.h"

#include <mutex>

#include "support/error.h"

namespace fixfuse::support {

Symbol SymbolTable::intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;  // raced with another interner
  FIXFUSE_CHECK(names_.size() < 0xffffffffu, "symbol table overflow");
  names_.emplace_back(name);
  Symbol s(static_cast<std::uint32_t>(names_.size() - 1));
  ids_.emplace(std::string_view(names_.back()), s);
  return s;
}

Symbol SymbolTable::lookup(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = ids_.find(name);
  return it == ids_.end() ? Symbol() : it->second;
}

const std::string& SymbolTable::name(Symbol s) const& {
  std::shared_lock lock(mutex_);
  FIXFUSE_CHECK(s.valid() && s.id() < names_.size(),
                "name() of unknown symbol");
  return names_[s.id()];
}

std::size_t SymbolTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

SymbolTable& globalSymbols() {
  static auto* table = new SymbolTable();  // leaky: outlives static Exprs
  return *table;
}

}  // namespace fixfuse::support
