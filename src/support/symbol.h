// Interned identifiers: a process-wide name <-> dense 32-bit id bijection.
//
// Every layer that used to traffic in std::string names (ir variable
// references, poly affine terms, deps array identities) keys on Symbol
// instead: equality is an integer compare, hashing is O(1), and maps
// shrink to flat vectors of (Symbol, payload) pairs. Names are rendered
// only at the edges (printer, emit_c, diagnostics) via name().
//
// The table lives in `support` so that poly (which must not depend on
// ir) can share the same ids as the IR layer; ir::Context re-exports it
// as the symbol side of the interning core (see ir/context.h).
//
// Thread-safety: intern() takes a unique lock, name() a shared lock.
// Returned name references are stable for the process lifetime (storage
// is never freed - the table is a leaky singleton, like the dep cache).
// Ids are dense and assigned in first-intern order; that order is only
// deterministic on a single thread, so ids must never leak into
// deterministic output - anything printed sorts by *name* at the edge.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace fixfuse::support {

/// Strong 32-bit typedef for an interned name. Default-constructed
/// symbols are invalid; valid ones only come from SymbolTable::intern.
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(std::uint32_t id) : id_(id) {}

  constexpr std::uint32_t id() const { return id_; }
  constexpr bool valid() const { return id_ != kInvalid; }
  constexpr explicit operator bool() const { return valid(); }

  friend constexpr bool operator==(Symbol a, Symbol b) {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(Symbol a, Symbol b) {
    return a.id_ != b.id_;
  }
  /// Orders by id (first-intern order), NOT by name: fine for container
  /// canonicalisation, wrong for deterministic output (sort by name
  /// there).
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t id_ = kInvalid;
};

class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Id of `name`, interning it on first sight.
  Symbol intern(std::string_view name);
  /// Id of `name` if already interned; invalid Symbol otherwise.
  Symbol lookup(std::string_view name) const;

  // Ref-qualified like the poly accessors (CLAUDE.md): the returned
  // reference points into the table, so calling on a temporary is
  // deleted. (The reference itself is stable forever - the storage
  // is append-only - but the convention keeps the pattern greppable.)
  [[nodiscard]] const std::string& name(Symbol s) const&;
  const std::string& name(Symbol s) const&& = delete;

  std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;  // deque: element addresses are stable
  std::unordered_map<std::string_view, Symbol> ids_;  // views into names_
};

/// The process-wide table every layer shares (leaky singleton).
SymbolTable& globalSymbols();

/// Convenience shorthands over the global table.
inline Symbol internSymbol(std::string_view name) {
  return globalSymbols().intern(name);
}
inline const std::string& symbolName(Symbol s) {
  return globalSymbols().name(s);
}

}  // namespace fixfuse::support

template <>
struct std::hash<fixfuse::support::Symbol> {
  std::size_t operator()(fixfuse::support::Symbol s) const noexcept {
    // Fibonacci hashing spreads the dense ids across buckets.
    return static_cast<std::size_t>(s.id()) * 0x9e3779b97f4a7c15ull;
  }
};
