#include "support/thread_pool.h"

#include <algorithm>

namespace fixfuse::support {

unsigned ThreadPool::hardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    ++inFlight_;
  }
  workCv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idleCv_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inFlight_;
    }
    idleCv_.notify_all();
  }
}

}  // namespace fixfuse::support
