#include "support/thread_pool.h"

#include <algorithm>

namespace fixfuse::support {

unsigned ThreadPool::hardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    ++inFlight_;
  }
  workCv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idleCv_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::parallelForWave(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (size() <= 1 || count == 1) {
    // Inline path keeps the full contract: attempt every index, then
    // rethrow from the lowest one that failed (here the first failure,
    // since the loop runs in index order).
    std::exception_ptr err;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    return;
  }
  // Per-call latch: the pool may be shared, so pool.wait() (which waits
  // for *all* in-flight jobs) would over-synchronise. Chunk the index
  // space so each worker gets one contiguous slice.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending;
    std::size_t errIndex;
    std::exception_ptr err;
  } latch;
  const std::size_t nChunks = std::min<std::size_t>(count, size());
  latch.pending = nChunks;
  latch.errIndex = count;  // sentinel: no error yet
  for (std::size_t c = 0; c < nChunks; ++c) {
    const std::size_t lo = c * count / nChunks;
    const std::size_t hi = (c + 1) * count / nChunks;
    submit([&latch, &fn, lo, hi] {
      // Every index is attempted even after an earlier one threw: the
      // caller relies on the barrier meaning "all work was issued".
      for (std::size_t i = lo; i < hi; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(latch.mu);
          if (i < latch.errIndex) {
            latch.errIndex = i;
            latch.err = std::current_exception();
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(latch.mu);
        --latch.pending;
      }
      latch.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch.mu);
  latch.cv.wait(lock, [&latch] { return latch.pending == 0; });
  if (latch.err) std::rethrow_exception(latch.err);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inFlight_;
    }
    idleCv_.notify_all();
  }
}

}  // namespace fixfuse::support
