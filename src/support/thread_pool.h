// Fixed-size worker-thread pool and an ordered parallel map built on it.
//
// Used by the bench sweep runner: independent (kernel, N) sweep points are
// legal to run concurrently because each point owns its interpreter
// machine, arrays and simulator state; determinism is preserved by
// collecting results into an index-addressed vector and emitting them in
// submission order (tests/support_threadpool_test.cpp asserts byte-identical
// output across thread counts).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fixfuse::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned threads = hardwareThreads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a job. Jobs must not throw out of the pool; wrap and capture
  /// (parallelMapOrdered does this for you).
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait();

  /// Run fn(i) for every i in [0, count) across the pool's workers and
  /// return only when all of them finished (a barrier). Every index is
  /// attempted even after a failure; if any invocation threw, the
  /// exception from the *lowest* index that threw is rethrown on the
  /// caller thread (deterministic regardless of scheduling). Runs inline
  /// on the caller when the pool has a single worker or count <= 1.
  /// Unlike parallelMapOrdered, no per-index result storage is allocated.
  void parallelForWave(std::size_t count,
                       const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareThreads();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable workCv_;   // signalled when work arrives / stop
  std::condition_variable idleCv_;   // signalled when a job completes
  std::size_t inFlight_ = 0;         // queued + running jobs
  bool stop_ = false;
};

/// Run fn(i) for i in [0, n) on up to `threads` workers and return the
/// results in index order. The first exception thrown by any job is
/// rethrown in the caller after all jobs finish. threads <= 1 runs inline.
template <typename R, typename Fn>
std::vector<R> parallelMapOrdered(std::size_t n, unsigned threads, Fn&& fn) {
  std::vector<R> out(n);
  if (n == 0) return out;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  ThreadPool pool(static_cast<unsigned>(
      std::min<std::size_t>(threads, n)));
  std::mutex errMu;
  std::exception_ptr err;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      try {
        out[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMu);
        if (!err) err = std::current_exception();
      }
    });
  }
  pool.wait();
  if (err) std::rethrow_exception(err);
  return out;
}

}  // namespace fixfuse::support
