#include "tile/selection.h"

#include <cmath>

#include "support/error.h"

namespace fixfuse::tile {

std::int64_t pdatTileSize(const sim::CacheConfig& l1,
                          std::uint32_t elementBytes) {
  FIXFUSE_CHECK(l1.valid(), "invalid cache config");
  double elements =
      static_cast<double>(l1.sizeBytes) / static_cast<double>(elementBytes);
  double k = static_cast<double>(l1.ways);
  double t = std::sqrt((k - 1.0) / k * elements);
  std::int64_t tile = static_cast<std::int64_t>(t);
  return tile < 1 ? 1 : tile;
}

std::uint64_t selfInterferenceMisses(const sim::CacheConfig& l1,
                                     std::int64_t ld, std::int64_t tileSize,
                                     std::uint32_t elementBytes) {
  FIXFUSE_CHECK(ld >= tileSize && tileSize >= 1, "bad tile/ld");
  sim::Cache cache(l1);
  auto sweep = [&] {
    for (std::int64_t r = 0; r < tileSize; ++r)
      for (std::int64_t c = 0; c < tileSize; ++c)
        cache.access(static_cast<std::uint64_t>((r * ld + c)) * elementBytes);
  };
  sweep();  // warm
  std::uint64_t before = cache.misses();
  sweep();  // measure
  return cache.misses() - before;
}

std::int64_t lrwTileSize(const sim::CacheConfig& l1, std::int64_t ld,
                         std::uint32_t elementBytes, std::int64_t minTile) {
  std::int64_t hi = pdatTileSize(l1, elementBytes);
  if (hi > ld) hi = ld;
  for (std::int64_t t = hi; t > minTile; --t)
    if (selfInterferenceMisses(l1, ld, t, elementBytes) == 0) return t;
  return minTile;
}

}  // namespace fixfuse::tile
