// Tile-size selection algorithms used in the paper's Section 4:
//
//  * PDAT (Panda, Nakamura, Dutt, Nicolau 1999): the fixed tile size
//    sqrt((K-1)/K * C) where C is the L1 capacity (in elements) and K its
//    associativity - independent of the problem size.
//
//  * LRW (Wolf & Lam 1991): the largest square tile whose working set
//    incurs (essentially) no self-interference misses for one N x N
//    row-major array reference. Implemented by direct cache simulation of
//    a T x T block: a candidate tile is accepted when a second sweep over
//    the block hits for every line (no line of the block evicted another),
//    which is exactly the self-interference criterion. Problem-size
//    dependent: pathological leading dimensions (the paper's multiples of
//    238) shrink the viable tile.
#pragma once

#include <cstdint>

#include "sim/cache.h"

namespace fixfuse::tile {

/// PDAT tile size in elements per side.
std::int64_t pdatTileSize(const sim::CacheConfig& l1,
                          std::uint32_t elementBytes = 8);

/// LRW tile size for an N x N array with leading dimension `ld` elements
/// (pass ld = N + 1 for this repo's layout). Searches downward from the
/// PDAT size; never returns less than `minTile`.
std::int64_t lrwTileSize(const sim::CacheConfig& l1, std::int64_t ld,
                         std::uint32_t elementBytes = 8,
                         std::int64_t minTile = 4);

/// Self-interference misses of one T x T block of an array with leading
/// dimension `ld`, measured as the misses of a second full sweep after a
/// first (warming) sweep.
std::uint64_t selfInterferenceMisses(const sim::CacheConfig& l1,
                                     std::int64_t ld, std::int64_t tileSize,
                                     std::uint32_t elementBytes = 8);

}  // namespace fixfuse::tile
