// Round-trip validation of the C emitter: emit a kernel as C, compile it
// with the host compiler into a small driver that initialises the arrays
// with the same deterministic generator, run it, and compare the printed
// checksums against the interpreter's machine state element by element.
//
// This proves the emitted C *means* the same thing as the IR - macro
// linearisation (column-major), floor-div/mod helpers, guards, selects
// and all.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/emit_c.h"
#include "interp/interp.h"
#include "kernels/common.h"
#include "kernels/native.h"

namespace fixfuse {
namespace {

/// SplitMix64 re-implemented in emitted C so the driver initialises the
/// arrays identically to the test process.
const char* kDriverPrelude = R"(
#include <stdio.h>
#include <stdint.h>
#include <stdlib.h>
static uint64_t st;
static uint64_t nxt(void) {
  uint64_t z = (st += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
static double nxtd(double lo, double hi) {
  return lo + (hi - lo) * ((double)(nxt() >> 11) * (1.0 / 9007199254740992.0));
}
)";

struct RoundTrip {
  std::string kernel;
  std::int64_t n;
  std::int64_t tile;
};

class CodegenRoundTrip : public ::testing::TestWithParam<RoundTrip> {};

TEST_P(CodegenRoundTrip, CompiledCMatchesInterpreter) {
  const RoundTrip& rt = GetParam();
  kernels::KernelBundle b = kernels::buildKernel(rt.kernel, {rt.tile});
  const ir::Program& prog = b.fixed;

  // Interpreter side.
  std::map<std::string, std::int64_t> params{{"N", rt.n}};
  if (rt.kernel == "jacobi") params["M"] = 3;
  interp::Machine m(prog, params);
  {
    // Column-major init identical to the C driver below: fill "A" with
    // the generator, seeded per kernel; Cholesky needs SPD so it uses
    // the shared spdMatrix (replicated as data in the driver).
    kernels::native::Matrix a0 =
        rt.kernel == "cholesky"
            ? kernels::native::spdMatrix(rt.n, 42)
            : kernels::native::randomMatrix(rt.n, 42, 0.5, 1.5);
    m.array("A").data() = a0;
  }
  interp::Interpreter it(prog, m, nullptr);
  it.run();
  const auto& expect = m.array("A").data();

  // Emit C + driver.
  std::string base = ::testing::TempDir() + "fixfuse_rt_" + rt.kernel + "_" +
                     std::to_string(rt.n);
  std::string cPath = base + ".c";
  {
    std::ofstream out(cPath);
    out << codegen::emitC(prog, {"kernel_fn", true});
    out << kDriverPrelude;
    out << "int main(void) {\n";
    out << "  long N = " << rt.n << ";\n";
    // Allocate and initialise every array of the program.
    for (const auto& a : prog.arrays) {
      out << "  double* " << a.name << "_ = calloc((size_t)((N+"
          << 20 /* generous upper bound on extent slack */
          << ")*(N+20)), sizeof(double));\n";
    }
    if (rt.kernel == "cholesky") {
      // SPD: symmetric random + diagonal dominance, mirroring spdMatrix.
      out << "  st = 42;\n";
      out << "  long lda = N + 1;\n";
      out << "  for (long i = 1; i <= N; ++i)\n";
      out << "    for (long j = 1; j <= i; ++j) {\n";
      out << "      double v = nxtd(-1.0, 1.0);\n";
      out << "      A_[i*lda+j] = v; A_[j*lda+i] = v;\n";
      out << "    }\n";
      out << "  for (long i = 1; i <= N; ++i) {\n";
      out << "    double s = 0;\n";
      out << "    for (long j = 1; j <= N; ++j) if (j != i) s += "
             "(A_[i*lda+j] < 0 ? -A_[i*lda+j] : A_[i*lda+j]);\n";
      out << "    A_[i*lda+i] = s + 1.0;\n";
      out << "  }\n";
    } else {
      out << "  st = 42;\n";
      out << "  long lda = N + 1;\n";
      out << "  for (long i = 1; i <= N; ++i)\n";
      out << "    for (long j = 1; j <= N; ++j)\n";
      out << "      A_[i*lda+j] = nxtd(0.5, 1.5);\n";
    }
    out << "  kernel_fn(";
    bool first = true;
    for (const auto& prm : prog.params) {
      out << (first ? "" : ", ") << (prm == "M" ? "3L" : "N");
      first = false;
    }
    for (const auto& a : prog.arrays) {
      out << (first ? "" : ", ") << a.name << "_";
      first = false;
    }
    out << ");\n";
    out << "  for (long j = 0; j <= N; ++j)\n";
    out << "    for (long i = 0; i <= N; ++i)\n";
    out << "      printf(\"%.17e\\n\", A_[j*(N+1)+i]);\n";
    out << "  return 0;\n}\n";
  }

  std::string bin = base + ".bin";
  std::string cmd = "cc -O1 -std=c99 " + cPath + " -lm -o " + bin +
                    " 2>" + base + ".err";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << "emitted C failed to compile";
  std::string outPath = base + ".out";
  ASSERT_EQ(std::system((bin + " > " + outPath).c_str()), 0);

  std::ifstream in(outPath);
  std::size_t idx = 0;
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_LT(idx, expect.size());
    double got = std::strtod(line.c_str(), nullptr);
    double want = expect[idx];
    if (!(got == want) && !(std::isnan(got) && std::isnan(want)))
      FAIL() << rt.kernel << " element " << idx << ": C=" << got
             << " interp=" << want;
    ++idx;
  }
  EXPECT_EQ(idx, expect.size());
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, CodegenRoundTrip,
    ::testing::Values(RoundTrip{"cholesky", 10, 3},
                      RoundTrip{"lu", 9, 3},
                      RoundTrip{"jacobi", 10, 3},
                      RoundTrip{"qr", 8, 3}),
    [](const ::testing::TestParamInfo<RoundTrip>& info) {
      return info.param.kernel;
    });

}  // namespace
}  // namespace fixfuse
