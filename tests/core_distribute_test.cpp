// Tests for loop distribution (the paper's Sec. 6 future work):
// legal splits happen maximally, illegal ones are refused, and every
// result is interpreter-verified against the original.
#include <gtest/gtest.h>

#include "core/transforms.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "ir/rewrite.h"
#include "support/error.h"
#include "support/rng.h"

namespace fixfuse::core {
namespace {

using namespace fixfuse::ir;

poly::ParamContext ctxN() {
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  return ctx;
}

void randomInit(interp::Machine& m, const ir::Program& p, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (const auto& decl : p.arrays)
    if (m.hasArray(decl.name))
      for (auto& v : m.array(decl.name).data()) v = rng.nextDouble(-2.0, 2.0);
}

::testing::AssertionResult equivalent(const ir::Program& a,
                                      const ir::Program& b, std::int64_t n) {
  auto init = [&](interp::Machine& m) { randomInit(m, a, 5); };
  interp::Machine ma = interp::runProgram(a, {{"N", n}}, init);
  interp::Machine mb = interp::runProgram(b, {{"N", n}}, init);
  for (const auto& decl : a.arrays) {
    // Bitwise: NaN-producing programs must still compare equal to
    // themselves (NaN != NaN breaks a tolerance-0 check).
    if (!interp::arraysBitwiseEqual(ma, mb, decl.name))
      return ::testing::AssertionFailure()
             << decl.name << " differs bitwise" << "\n" << printProgram(b);
  }
  return ::testing::AssertionSuccess();
}

std::size_t topLevelNestCount(const ir::Program& p) {
  std::size_t count = 0;
  for (const auto& st : p.body->stmts())
    if (st->kind() == StmtKind::Loop) ++count;
  return count;
}

TEST(Distribute, IndependentStatementsSplitFully) {
  // A(i) = B(i); C(i) = B(i)*2  - no cross-statement dependence.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.declareArray("Cc", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {aassign("A", {iv("i")}, load("B", {iv("i")})),
       aassign("Cc", {iv("i")}, mul(load("B", {iv("i")}), fc(2.0)))})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 2u);
  EXPECT_TRUE(equivalent(p, q, 11));
}

TEST(Distribute, ForwardDependenceStillSplits) {
  // A(i) = B(i); C(i) = A(i-1): the second statement reads values the
  // first nest has fully produced once distributed - still legal (only a
  // forward dependence, never reversed).
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.declareArray("Cc", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(2), iv("N"),
      {aassign("A", {iv("i")}, load("B", {iv("i")})),
       aassign("Cc", {iv("i")}, load("A", {sub(iv("i"), ic(1))}))})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 2u);
  EXPECT_TRUE(equivalent(p, q, 12));
}

TEST(Distribute, BackwardDependenceRefused) {
  // A(i) = B(i); B(i+1) = C(i): statement 2 writes B(i+1) which
  // statement 1 reads at the NEXT iteration; distributing would make the
  // first nest read the new values. Must stay fused.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.declareArray("Cc", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {aassign("A", {iv("i")}, load("B", {iv("i")})),
       aassign("B", {add(iv("i"), ic(1))}, load("Cc", {iv("i")}))})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 1u);
  EXPECT_TRUE(equivalent(p, q, 10));
}

TEST(Distribute, SameIterationWriteReadSplits) {
  // A(i) = B(i); C(i) = A(i): same-iteration flow dependence - after
  // distribution the reads still see the writes (forward only).
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.declareArray("Cc", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {aassign("A", {iv("i")}, load("B", {iv("i")})),
       aassign("Cc", {iv("i")}, load("A", {iv("i")}))})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 2u);
  EXPECT_TRUE(equivalent(p, q, 9));
}

TEST(Distribute, AntiDependenceAcrossIterationsRefused) {
  // A(i) = L(i); L(i+1) = B(i): wait - that is forward for L. Use:
  // C(i) = A(i+1); A(i) = B(i): statement 1 reads A(i+1), statement 2
  // writes A(i); distributing runs ALL reads first - that is exactly the
  // original semantics? No: original interleaves, at iteration i the
  // write A(i) happens before the read A(i+1) of iteration i+1... the
  // read at i+1 must see the ORIGINAL A(i+1)? The write to A(i+1)
  // happens at iteration i+1 AFTER the read at iteration i+1? Original
  // order at iteration i: read A(i+1) then write A(i). The read at
  // iteration i+1 reads A(i+2). So reads always see original values
  // except... write A(i) at iter i, read A(i+1) at iter i: never the
  // same cell as a later read. Distribution: all reads first (see
  // original values - same), then writes. Legal! Verify the transform
  // agrees and the programs match.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.declareArray("Cc", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {aassign("Cc", {iv("i")}, load("A", {add(iv("i"), ic(1))})),
       aassign("A", {iv("i")}, load("B", {iv("i")}))})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 2u);
  EXPECT_TRUE(equivalent(p, q, 10));
}

TEST(Distribute, TrueAntiRefused) {
  // C(i) = A(i-1); A(i) = B(i): the read at iteration i needs the value
  // A(i-1) BEFORE the write of iteration i-1? No - write A(i-1) happens
  // at iteration i-1 < i, before the read in original order (flow).
  // Distribution runs all reads first -> reads would see the ORIGINAL
  // A(i-1), reversing the flow dependence. Must stay fused.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.declareArray("Cc", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(2), iv("N"),
      {aassign("Cc", {iv("i")}, load("A", {sub(iv("i"), ic(1))})),
       aassign("A", {iv("i")}, load("B", {iv("i")}))})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 1u);
  EXPECT_TRUE(equivalent(p, q, 10));
}

TEST(Distribute, ThreeWayMaximalSplit) {
  // s0 independent; s1 -> s2 backward pair stays together.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.declareArray("Cc", {add(iv("N"), ic(2))});
  p.declareArray("D", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {aassign("D", {iv("i")}, fc(1.0)),
       aassign("A", {iv("i")}, load("B", {iv("i")})),
       aassign("B", {add(iv("i"), ic(1))}, load("Cc", {iv("i")}))})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 2u);  // {D}, {A;B}
  EXPECT_TRUE(equivalent(p, q, 10));
}

TEST(Distribute, TwoDimensionalNest) {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2)), add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2)), add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {loopS("j", ic(1), iv("N"),
             {aassign("A", {iv("i"), iv("j")}, fc(1.0)),
              aassign("B", {iv("j"), iv("i")},
                      load("A", {iv("i"), iv("j")}))})})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 2u);
  EXPECT_TRUE(equivalent(p, q, 7));
}

TEST(Distribute, SingleStatementIsNoop) {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.body = blockS({loopS("i", ic(1), iv("N"),
                         {aassign("A", {iv("i")}, fc(1.0))})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 1u);
}

TEST(Distribute, ScalarDependenceKeepsTogether) {
  // s = A(i); B(i) = s: scalar flow at the same iteration, but the
  // scalar makes EVERY instance alias - splitting would leave only the
  // last value for all B(i). Must stay fused.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.declareScalar("s", Type::Float);
  p.body = blockS({loopS("i", ic(1), iv("N"),
                         {sassign("s", load("A", {iv("i")})),
                          aassign("B", {iv("i")}, sloadf("s"))})});
  p.numberAssignments();
  Program q = distributeLoops(p, ctxN());
  EXPECT_EQ(topLevelNestCount(q), 1u);
  EXPECT_TRUE(equivalent(p, q, 8));
}

}  // namespace
}  // namespace fixfuse::core
