// Tests for fused-program generation and the FixDeps pipeline, validated
// against the interpreter: the fixed fused program must reproduce the
// sequential (pre-fusion) semantics bit-for-bit on random inputs, and an
// unfixed illegal fusion must NOT (showing the tests can tell the
// difference).
#include <gtest/gtest.h>

#include "core/elim.h"
#include "core/fuse.h"
#include "core/scan.h"
#include "deps/analysis.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "ir/rewrite.h"
#include "support/rng.h"

namespace fixfuse::core {
namespace {

using namespace fixfuse::ir;
using deps::AffineMap;
using deps::NestSystem;
using deps::PerfectNest;
using deps::TileSize;
using interp::Machine;
using poly::AffineExpr;
using poly::IntegerSet;

AffineExpr V(const std::string& n) { return AffineExpr::var(n); }
AffineExpr C(std::int64_t k) { return AffineExpr(k); }

void numberNests(NestSystem& sys) {
  int id = 0;
  for (auto& n : sys.nests)
    ir::forEachStmt(*n.body, [&](const Stmt& s) {
      if (s.kind() == StmtKind::Assign)
        const_cast<Stmt&>(s).setAssignId(id++);
    });
}

/// Fill every array of `m` with deterministic pseudo-random values.
void randomInit(Machine& m, const ir::Program& p, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (const auto& decl : p.arrays) {
    if (!m.hasArray(decl.name)) continue;
    for (auto& v : m.array(decl.name).data()) v = rng.nextDouble(-2.0, 2.0);
  }
}

/// Run `a` and `b` with identically initialised arrays; compare all
/// arrays declared in `a` (ignoring copy arrays present only in `b`).
::testing::AssertionResult equivalent(const ir::Program& a,
                                      const ir::Program& b,
                                      const std::map<std::string, std::int64_t>& params,
                                      std::uint64_t seed = 42) {
  Machine ma = interp::runProgram(
      a, params, [&](Machine& m) { randomInit(m, a, seed); });
  Machine mb = interp::runProgram(
      b, params, [&](Machine& m) { randomInit(m, b, seed); });
  for (const auto& decl : a.arrays) {
    if (!b.hasArray(decl.name)) continue;
    // Bitwise: NaN-producing programs must still compare equal to
    // themselves (NaN != NaN breaks a tolerance-0 check).
    if (!interp::arraysBitwiseEqual(ma, mb, decl.name))
      return ::testing::AssertionFailure()
             << "array " << decl.name << " differs bitwise" << "\n--- a:\n"
             << printProgram(a) << "--- b:\n" << printProgram(b);
  }
  return ::testing::AssertionSuccess();
}

/// L1: A(i) = B(i) + 1 ; L2: C(i) = A(i + shift) * 2, both over 1..N.
NestSystem shiftSystem(std::int64_t shift) {
  NestSystem sys;
  sys.ctx.addParam("N", 4, 100000);
  sys.decls.params = {"N"};
  sys.decls.declareArray("A", {add(iv("N"), ic(8))});
  sys.decls.declareArray("B", {add(iv("N"), ic(8))});
  sys.decls.declareArray("C", {add(iv("N"), ic(8))});
  sys.decls.body = blockS({});
  sys.isVars = {"i"};
  sys.isBounds = {{C(1), V("N")}};
  PerfectNest l1;
  l1.vars = {"i"};
  l1.domain = IntegerSet({"i"});
  l1.domain.addRange("i", C(1), V("N"));
  l1.body = blockS({aassign("A", {iv("i")},
                            add(load("B", {iv("i")}), fc(1.0)))});
  l1.embed = AffineMap{{V("i")}};
  PerfectNest l2 = l1;
  l2.body = blockS({aassign(
      "C", {iv("i")},
      mul(load("A", {add(iv("i"), ic(shift))}), fc(2.0)))});
  l2.embed = AffineMap{{V("i")}};
  sys.nests = {std::move(l1), std::move(l2)};
  numberNests(sys);
  return sys;
}

TEST(ScanLoops, BoundsFromTriangularSet) {
  IntegerSet s({"i", "j"});
  s.addRange("i", C(1), V("N"));
  s.addRange("j", V("i"), V("N"));
  ScanBounds bi = boundsFor(s, 0);
  EXPECT_EQ(bi.lower->str(), "1");
  EXPECT_EQ(bi.upper->str(), "N");
  ScanBounds bj = boundsFor(s, 1);
  EXPECT_EQ(bj.lower->str(), "i");
  EXPECT_EQ(bj.upper->str(), "N");
}

TEST(ScanLoops, EnumeratesTrianglePoints) {
  // Count points of { 1 <= i <= 4, i <= j <= 4 } by scanning.
  IntegerSet s({"i", "j"});
  s.addRange("i", C(1), C(4));
  s.addRange("j", V("i"), C(4));
  ir::Program p;
  p.declareArray("count", {ic(1)});
  StmtPtr body = aassign("count", {ic(0)},
                         add(load("count", {ic(0)}), fc(1.0)));
  p.body = blockS({scanLoops(s, std::move(body), /*guardBody=*/true)});
  p.numberAssignments();
  Machine m = interp::runProgram(p, {}, nullptr);
  std::vector<std::int64_t> z{0};
  EXPECT_DOUBLE_EQ(m.array("count").get(z), 10.0);
}

TEST(PruneImplied, DropsRedundantKeepsEssential) {
  IntegerSet context({"i"});
  context.addRange("i", C(1), V("N"));
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 1000);
  std::vector<poly::Constraint> cs{
      poly::Constraint::ge(V("i") - C(0)),   // implied by i >= 1
      poly::Constraint::ge(V("i") - C(3)),   // essential
      poly::Constraint::ge(V("N") - V("i"))  // implied
  };
  auto kept = pruneImplied(cs, context, ctx);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].expr, V("i") - C(3));
}

TEST(Fuse, SequentialProgramMatchesHandWritten) {
  NestSystem sys = shiftSystem(1);
  ir::Program seq = generateSequentialProgram(sys);
  // Hand-built reference.
  ir::Program ref = sys.decls;
  ref.body = blockS(
      {loopS("i", ic(1), iv("N"),
             {aassign("A", {iv("i")}, add(load("B", {iv("i")}), fc(1.0)))}),
       loopS("i", ic(1), iv("N"),
             {aassign("C", {iv("i")},
                      mul(load("A", {add(iv("i"), ic(1))}), fc(2.0)))})});
  ref.numberAssignments();
  EXPECT_TRUE(equivalent(seq, ref, {{"N", 17}}));
}

TEST(Fuse, LegalFusionPreservesSemantics) {
  NestSystem sys = shiftSystem(-1);  // backward shift: legal fusion
  ir::Program seq = generateSequentialProgram(sys);
  ir::Program fused = generateFusedProgram(sys);
  EXPECT_TRUE(equivalent(seq, fused, {{"N", 20}}));
  EXPECT_TRUE(equivalent(seq, fused, {{"N", 4}}));
}

TEST(Fuse, IllegalFusionActuallyBreaks) {
  NestSystem sys = shiftSystem(1);  // forward shift: illegal to fuse
  ir::Program seq = generateSequentialProgram(sys);
  ir::Program fused = generateFusedProgram(sys);
  EXPECT_FALSE(equivalent(seq, fused, {{"N", 20}}));
}

TEST(Fuse, FullTileRepairsFusion) {
  NestSystem sys = shiftSystem(1);
  sys.nests[0].tileSizes = {TileSize::full()};
  ir::Program seq = generateSequentialProgram(sys);
  ir::Program fused = generateFusedProgram(sys);
  EXPECT_TRUE(equivalent(seq, fused, {{"N", 20}}));
}

TEST(Fuse, ConcreteTileRepairsFusion) {
  for (std::int64_t shift : {1, 2, 3}) {
    NestSystem sys = shiftSystem(shift);
    sys.nests[0].tileSizes = {TileSize::of(shift + 1)};
    ir::Program seq = generateSequentialProgram(sys);
    ir::Program fused = generateFusedProgram(sys);
    EXPECT_TRUE(equivalent(seq, fused, {{"N", 23}})) << "shift " << shift;
    EXPECT_TRUE(equivalent(seq, fused, {{"N", 4}})) << "shift " << shift;
  }
}

TEST(Fuse, TooSmallTileStaysBroken) {
  NestSystem sys = shiftSystem(3);
  sys.nests[0].tileSizes = {TileSize::of(2)};
  ir::Program seq = generateSequentialProgram(sys);
  ir::Program fused = generateFusedProgram(sys);
  EXPECT_FALSE(equivalent(seq, fused, {{"N", 23}}));
}

// --- FixDeps end-to-end on synthetic systems --------------------------------

TEST(FixDeps, RepairsForwardShift) {
  for (std::int64_t shift : {1, 2, 5}) {
    NestSystem sys = shiftSystem(shift);
    ir::Program seq = generateSequentialProgram(sys);
    FixLog log = fixDeps(sys);
    ASSERT_EQ(log.tiles.size(), 1u) << "shift " << shift;
    ir::Program fixed = generateFusedProgram(sys);
    EXPECT_TRUE(equivalent(seq, fixed, {{"N", 25}})) << "shift " << shift;
    EXPECT_TRUE(equivalent(seq, fixed, {{"N", 5}})) << "shift " << shift;
    EXPECT_TRUE(deps::flowOutputViolationsFixed(sys));
  }
}

TEST(FixDeps, NoActionWhenFusionLegal) {
  NestSystem sys = shiftSystem(-2);
  FixLog log = fixDeps(sys);
  EXPECT_TRUE(log.tiles.empty());
  EXPECT_TRUE(log.copies.empty());
  EXPECT_FALSE(sys.nests[0].isTiled());
}

TEST(FixDeps, RepairsOutputDependence) {
  // L1 writes A(i-1); L2 writes A(i). Element x is written by L1 at fused
  // iteration x+1 but already overwritten by L2 at iteration x - the
  // fusion reverses the two writes, leaving B-values where the original
  // program leaves C-values.
  NestSystem sys = shiftSystem(0);
  sys.nests[0].body = blockS({aassign("A", {sub(iv("i"), ic(1))},
                                      load("B", {iv("i")}))});
  sys.nests[1].body = blockS({aassign("A", {iv("i")}, load("C", {iv("i")}))});
  numberNests(sys);
  ir::Program seq = generateSequentialProgram(sys);
  ir::Program broken = generateFusedProgram(sys);
  EXPECT_FALSE(equivalent(seq, broken, {{"N", 16}}));
  FixLog log = fixDeps(sys);
  EXPECT_FALSE(log.tiles.empty());
  ir::Program fixed = generateFusedProgram(sys);
  EXPECT_TRUE(equivalent(seq, fixed, {{"N", 16}}));
}

TEST(FixDeps, RepairsAntiDependenceWithCopying) {
  // 1-D Jacobi analogue:
  //   L1: B(i) = A(i-1) + A(i+1), i in 2..N-1
  //   L2: A(i) = B(i),            i in 2..N-1
  NestSystem sys = shiftSystem(0);
  for (auto& nest : sys.nests) {
    nest.domain = IntegerSet({"i"});
    nest.domain.addRange("i", C(2), V("N") - C(1));
  }
  sys.isBounds = {{C(2), V("N") - C(1)}};
  sys.nests[0].body = blockS(
      {aassign("B", {iv("i")}, add(load("A", {sub(iv("i"), ic(1))}),
                                   load("A", {add(iv("i"), ic(1))})))});
  sys.nests[1].body = blockS({aassign("A", {iv("i")}, load("B", {iv("i")}))});
  numberNests(sys);

  ir::Program seq = generateSequentialProgram(sys);
  ir::Program broken = generateFusedProgram(sys);
  EXPECT_FALSE(equivalent(seq, broken, {{"N", 16}}));

  FixLog log = fixDeps(sys);
  ASSERT_EQ(log.copies.size(), 1u);
  EXPECT_EQ(log.copies[0].array, "A");
  EXPECT_GE(log.copies[0].copiesInserted, 1u);
  EXPECT_GE(log.copies[0].readsRedirected, 1u);
  EXPECT_TRUE(sys.decls.hasArray(log.copies[0].copyArray));

  ir::Program fixed = generateFusedProgram(sys);
  EXPECT_TRUE(equivalent(seq, fixed, {{"N", 16}}));
  EXPECT_TRUE(equivalent(seq, fixed, {{"N", 5}}));
  EXPECT_TRUE(equivalent(seq, fixed, {{"N", 40}, }, 7));
}

TEST(FixDeps, CopyArraysMergeAcrossReaders) {
  // Theorem 3/4: two reader nests (both read A(i-1)) followed by a
  // writer nest A(i) = ... - one shared copy array must be introduced,
  // not one per reader, and the copy before the shared clobber is
  // inserted once.
  NestSystem sys = shiftSystem(0);
  sys.decls.declareArray("D", {add(iv("N"), ic(8))});
  for (auto& nest : sys.nests) {
    nest.domain = IntegerSet({"i"});
    nest.domain.addRange("i", C(2), V("N"));
  }
  sys.isBounds = {{C(2), V("N")}};
  PerfectNest third = sys.nests[1];
  sys.nests[0].body = blockS(
      {aassign("B", {iv("i")}, load("A", {sub(iv("i"), ic(1))}))});
  sys.nests[1].body = blockS(
      {aassign("D", {iv("i")}, mul(load("A", {sub(iv("i"), ic(1))}), fc(2.0)))});
  third.body = blockS({aassign("A", {iv("i")}, load("C", {iv("i")}))});
  sys.nests.push_back(std::move(third));
  int id = 0;
  for (auto& nest : sys.nests)
    ir::forEachStmt(*nest.body, [&](const Stmt& s) {
      if (s.kind() == StmtKind::Assign)
        const_cast<Stmt&>(s).setAssignId(id++);
    });

  ir::Program seq = generateSequentialProgram(sys);
  FixLog log = fixDeps(sys);
  ASSERT_EQ(log.copies.size(), 2u);  // both readers were repaired ...
  EXPECT_EQ(log.copies[0].copyArray, log.copies[1].copyArray);  // ... via ONE H
  // Exactly one extra array (the merged H), despite two readers.
  std::size_t hCount = 0;
  for (const auto& a : sys.decls.arrays)
    if (a.name.rfind("H_", 0) == 0) ++hCount;
  EXPECT_EQ(hCount, 1u);

  ir::Program fixed = generateFusedProgram(sys);
  EXPECT_TRUE(equivalent(seq, fixed, {{"N", 16}}));
  EXPECT_TRUE(equivalent(seq, fixed, {{"N", 5}}));
}

TEST(FixDeps, ScalarFlowRepairedByFullTile) {
  // L1: s = B(i) (last write wins: s = B(N)); L2: C(i) = s * B(i)?? -
  // rather: original semantics need s's final value from L1 before L2
  // starts, so the fused version must run all of L1 first (Full tile).
  NestSystem sys = shiftSystem(0);
  sys.decls.declareScalar("s", Type::Float);
  sys.nests[0].body = blockS(
      {sassign("s", add(sloadf("s"), load("B", {iv("i")})))});
  sys.nests[1].body = blockS({aassign("C", {iv("i")}, sloadf("s"))});
  numberNests(sys);
  ir::Program seq = generateSequentialProgram(sys);
  ir::Program broken = generateFusedProgram(sys);
  EXPECT_FALSE(equivalent(seq, broken, {{"N", 12}}));
  FixLog log = fixDeps(sys);
  ASSERT_EQ(log.tiles.size(), 1u);
  EXPECT_TRUE(log.tiles[0].sizes[0].isFull());
  ir::Program fixed = generateFusedProgram(sys);
  EXPECT_TRUE(equivalent(seq, fixed, {{"N", 12}}));
}

// --- 2-D systems ------------------------------------------------------------

/// L1 (depth 1, pinned at j = lb): row init; L2 (depth 2): uses row.
/// A(i) accumulated into S(i,j) style kernel exercising pinned dims.
NestSystem pinnedDimSystem() {
  NestSystem sys;
  sys.ctx.addParam("N", 4, 100000);
  sys.decls.params = {"N"};
  sys.decls.declareArray("R", {add(iv("N"), ic(2))});
  sys.decls.declareArray("S", {add(iv("N"), ic(2)), add(iv("N"), ic(2))});
  sys.decls.body = blockS({});
  sys.isVars = {"i", "j"};
  sys.isBounds = {{C(1), V("N")}, {C(1), V("N")}};
  // L1: R(i) = i-th partial sum seed; embedded at j = 1.
  PerfectNest l1;
  l1.vars = {"i"};
  l1.domain = IntegerSet({"i"});
  l1.domain.addRange("i", C(1), V("N"));
  l1.body = blockS({aassign("R", {iv("i")}, fc(0.5))});
  l1.embed = AffineMap{{V("i"), C(1)}};
  // L2: S(i,j) = R(i) * j-invariant.
  PerfectNest l2;
  l2.vars = {"i", "j"};
  l2.domain = IntegerSet({"i", "j"});
  l2.domain.addRange("i", C(1), V("N"));
  l2.domain.addRange("j", C(1), V("N"));
  l2.body = blockS({aassign("S", {iv("i"), iv("j")},
                            mul(load("R", {iv("i")}), fc(2.0)))});
  l2.embed = AffineMap{{V("i"), V("j")}};
  sys.nests = {std::move(l1), std::move(l2)};
  numberNests(sys);
  return sys;
}

TEST(Fuse, PinnedDimensionFusionIsLegalAndCorrect) {
  NestSystem sys = pinnedDimSystem();
  EXPECT_TRUE(deps::computeW(sys, 0).empty());  // R(i) ready at (i, 1)
  ir::Program seq = generateSequentialProgram(sys);
  ir::Program fused = generateFusedProgram(sys);
  EXPECT_TRUE(equivalent(seq, fused, {{"N", 9}}));
}

TEST(FixDeps, PinnedDimWithBackwardNeed) {
  // Make L2 read R(i+1): needed before it is produced at (i+1, 1).
  NestSystem sys = pinnedDimSystem();
  sys.nests[1].body = blockS(
      {aassign("S", {iv("i"), iv("j")},
               mul(load("R", {imin(add(iv("i"), ic(1)), iv("N"))}), fc(2.0)))});
  numberNests(sys);
  // min() is non-affine: the read is treated as may-touch-anything, so
  // FixDeps must still repair it (conservative path).
  ir::Program seq = generateSequentialProgram(sys);
  FixLog log = fixDeps(sys);
  EXPECT_FALSE(log.tiles.empty());
  ir::Program fixed = generateFusedProgram(sys);
  EXPECT_TRUE(equivalent(seq, fixed, {{"N", 9}}));
}

TEST(FixLog, Format) {
  NestSystem sys = shiftSystem(1);
  FixLog log = fixDeps(sys);
  std::string s = log.str();
  EXPECT_NE(s.find("tile nest 0"), std::string::npos);
}

}  // namespace
}  // namespace fixfuse::core
