// Unit tests for code sinking: discovery of sub-nests, fused-space
// construction, embeddings/pins, shared-prefix bookkeeping, overrides,
// and error reporting.
#include <gtest/gtest.h>

#include "core/fuse.h"
#include "core/sink.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "ir/rewrite.h"
#include "support/error.h"

namespace fixfuse::core {
namespace {

using namespace fixfuse::ir;
using poly::AffineExpr;

AffineExpr V(const std::string& n) { return AffineExpr::var(n); }
AffineExpr C(std::int64_t k) { return AffineExpr(k); }

/// do k = 1, N { s-statement; do i = k, N { body } }
Program simpleImperfect() {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.declareArray("R", {add(iv("N"), ic(1))});
  p.body = blockS({loopS(
      "k", ic(1), iv("N"),
      {aassign("R", {iv("k")}, fc(0.0)),
       loopS("i", iv("k"), iv("N"),
             {aassign("A", {iv("i"), iv("k")}, fc(1.0))})})});
  p.numberAssignments();
  return p;
}

TEST(Sink, DiscoversStatementGroupAndNest) {
  Program p = simpleImperfect();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  deps::NestSystem sys = codeSink(p, ctx);
  ASSERT_EQ(sys.nests.size(), 2u);
  EXPECT_EQ(sys.isVars, (std::vector<std::string>{"k", "i"}));
  // Nest 0: the statement group, pinned at i = lb = k.
  EXPECT_EQ(sys.nests[0].vars, (std::vector<std::string>{"k"}));
  EXPECT_EQ(sys.nests[0].sharedPrefix, 1u);
  EXPECT_EQ(sys.nests[0].embed.outputs[1], V("k"));  // pin at lb(i) = k
  // Nest 1: the main nest.
  EXPECT_EQ(sys.nests[1].vars, (std::vector<std::string>{"k", "i"}));
  EXPECT_EQ(sys.nests[1].embed.outputs[1], V("i"));
}

TEST(Sink, FusedBoundsDominanceSelection) {
  // Two sub-nests with i ranges k..N and k+1..N: the fused lb must be k.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.body = blockS({loopS(
      "k", ic(1), iv("N"),
      {loopS("i", iv("k"), iv("N"),
             {aassign("A", {iv("i"), iv("k")}, fc(1.0))}),
       loopS("i", add(iv("k"), ic(1)), iv("N"),
             {aassign("A", {iv("k"), iv("i")}, fc(2.0))})})});
  p.numberAssignments();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  deps::NestSystem sys = codeSink(p, ctx);
  EXPECT_EQ(sys.isBounds[1].first, V("k"));
  EXPECT_EQ(sys.isBounds[1].second, V("N"));
}

TEST(Sink, GuardedLoopKeepsGuardInBody) {
  // if (cond) { do i ... }: the (data-dependent) guard must wrap the
  // sunk body.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.declareScalar("t", Type::Float);
  p.body = blockS({loopS(
      "k", ic(1), iv("N"),
      {ifs(gtE(sloadf("t"), fc(0.0)),
           {loopS("i", iv("k"), iv("N"),
                  {aassign("A", {iv("i"), iv("k")}, fc(1.0))})}),
       loopS("j", iv("k"), iv("N"),
             {loopS("i", iv("k"), iv("N"),
                    {aassign("A", {iv("i"), iv("j")}, fc(2.0))})})})});
  p.numberAssignments();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  deps::NestSystem sys = codeSink(p, ctx);
  ASSERT_EQ(sys.nests.size(), 2u);
  EXPECT_EQ(sys.nests[0].body->kind(), StmtKind::If);
}

TEST(Sink, DimOverridesRemapLoopVars) {
  // Map the first sub-nest's own var i onto fused dim 2 (named q below).
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.body = blockS({loopS(
      "k", ic(1), iv("N"),
      {loopS("i", iv("k"), iv("N"),
             {aassign("A", {iv("i"), iv("k")}, fc(1.0))}),
       loopS("j", iv("k"), iv("N"),
             {loopS("q", iv("k"), iv("N"),
                    {aassign("A", {iv("q"), iv("j")}, fc(2.0))})})})});
  p.numberAssignments();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  SinkOptions opts;
  opts.dimOverrides[0] = {{"i", 2}};
  deps::NestSystem sys = codeSink(p, ctx, opts);
  EXPECT_EQ(sys.isVars, (std::vector<std::string>{"k", "j", "q"}));
  // Nest 0's i sits on dim 2; dim 1 is pinned at its lower bound (k).
  EXPECT_EQ(sys.nests[0].embed.outputs[2], V("i"));
  EXPECT_EQ(sys.nests[0].embed.outputs[1], V("k"));
}

TEST(Sink, IsBoundOverridesAreUsedVerbatim) {
  Program p = simpleImperfect();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  SinkOptions opts;
  opts.isBoundOverrides[1] = {C(1), V("N")};
  deps::NestSystem sys = codeSink(p, ctx, opts);
  EXPECT_EQ(sys.isBounds[1].first, C(1));
}

TEST(Sink, RecursionHandlesNestedImperfection) {
  // do i { do j { X=0; do k {...} } }: the j loop is an inner container.
  Program p;
  p.params = {"N"};
  p.declareArray("X", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.declareArray("A", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {loopS("j", ic(1), iv("N"),
             {aassign("X", {iv("j"), iv("i")}, fc(0.0)),
              loopS("k", ic(1), iv("N"),
                    {aassign("X", {iv("j"), iv("i")},
                             add(load("X", {iv("j"), iv("i")}),
                                 load("A", {iv("k"), iv("j")})))})})})});
  p.numberAssignments();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  deps::NestSystem sys = codeSink(p, ctx);
  ASSERT_EQ(sys.nests.size(), 2u);
  EXPECT_EQ(sys.isVars, (std::vector<std::string>{"i", "j", "k"}));
  EXPECT_EQ(sys.nests[0].vars, (std::vector<std::string>{"i", "j"}));
  EXPECT_EQ(sys.nests[0].sharedPrefix, 2u);
  EXPECT_EQ(sys.nests[1].sharedPrefix, 2u);
}

TEST(Sink, SequencedGroupsSplitAroundLoops) {
  // stmt; loop; stmt  => three nests in textual order.
  Program p;
  p.params = {"N"};
  p.declareArray("R", {add(iv("N"), ic(1))});
  p.declareArray("A", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.body = blockS({loopS(
      "k", ic(1), iv("N"),
      {aassign("R", {iv("k")}, fc(0.0)),
       loopS("i", iv("k"), iv("N"),
             {aassign("A", {iv("i"), iv("k")}, fc(1.0))}),
       aassign("R", {iv("k")}, fc(2.0))})});
  p.numberAssignments();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  deps::NestSystem sys = codeSink(p, ctx);
  ASSERT_EQ(sys.nests.size(), 3u);
  EXPECT_TRUE(sys.nests[0].vars.size() == 1 && sys.nests[2].vars.size() == 1);
}

TEST(Sink, NonAffineBoundsRejected) {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1))});
  p.declareScalar("m", Type::Int);
  p.body = blockS({loopS(
      "k", ic(1), iv("N"),
      {sassign("m", iv("k")),
       loopS("i", sloadi("m"), iv("N"), {aassign("A", {iv("i")}, fc(1.0))})})});
  p.numberAssignments();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  EXPECT_THROW(codeSink(p, ctx), UnsupportedError);
}

TEST(Sink, StatementBeforeTopLoopRejected) {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1))});
  p.body = blockS({aassign("A", {ic(0)}, fc(1.0)),
                   loopS("k", ic(1), iv("N"),
                         {aassign("A", {iv("k")}, fc(2.0))})});
  p.numberAssignments();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  EXPECT_THROW(codeSink(p, ctx), InternalError);
}

TEST(Sink, SunkSystemRoundTripsThroughFusion) {
  // Sinking then fusing a legal imperfect nest reproduces its semantics.
  Program p = simpleImperfect();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  deps::NestSystem sys = codeSink(p, ctx);
  ir::Program fused = generateFusedProgram(sys);
  auto init = [](interp::Machine& m) {
    for (auto& v : m.array("A").data()) v = -3.0;
    for (auto& v : m.array("R").data()) v = -3.0;
  };
  interp::Machine a = interp::runProgram(p, {{"N", 9}}, init);
  interp::Machine b = interp::runProgram(fused, {{"N", 9}}, init);
  EXPECT_TRUE(interp::arraysBitwiseEqual(a, b, "A"));
  EXPECT_TRUE(interp::arraysBitwiseEqual(a, b, "R"));
}

}  // namespace
}  // namespace fixfuse::core
