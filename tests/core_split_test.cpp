// Tests for context-aware guard simplification and index-set splitting
// (loop unswitching at a point).
#include <gtest/gtest.h>

#include "core/transforms.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "interp/observer.h"
#include "ir/printer.h"
#include "ir/rewrite.h"
#include "kernels/common.h"
#include "kernels/native.h"
#include "support/error.h"

namespace fixfuse::core {
namespace {

using namespace fixfuse::ir;
using poly::AffineExpr;
using poly::IntegerSet;

poly::ParamContext ctxN() {
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  return ctx;
}

std::size_t countIfs(const Stmt& s) {
  std::size_t n = 0;
  forEachStmt(s, [&](const Stmt& st) {
    if (st.kind() == StmtKind::If) ++n;
  });
  return n;
}

TEST(ContextSimplify, DropsProvablyTrueGuard) {
  // Context i >= 5 makes "i >= 3" vacuous.
  StmtPtr s = ifs(geE(iv("i"), ic(3)), {sassign("x", fc(1.0))});
  IntegerSet c(std::vector<std::string>{});
  c.addGE(AffineExpr::var("i") - AffineExpr(5));
  StmtPtr r = contextSimplify(*s, c, ctxN());
  ASSERT_TRUE(r);
  EXPECT_EQ(countIfs(*r), 0u);
}

TEST(ContextSimplify, RemovesProvablyFalseBranch) {
  StmtPtr s = ifelse(leE(iv("i"), ic(2)), {sassign("x", fc(1.0))},
                     {sassign("y", fc(2.0))});
  IntegerSet c(std::vector<std::string>{});
  c.addGE(AffineExpr::var("i") - AffineExpr(5));
  StmtPtr r = contextSimplify(*s, c, ctxN());
  ASSERT_TRUE(r);
  // Only the else branch survives, unguarded.
  EXPECT_EQ(countIfs(*r), 0u);
  bool sawY = false;
  forEachStmt(*r, [&](const Stmt& st) {
    if (st.kind() == StmtKind::Assign && st.lhs().name == "y") sawY = true;
  });
  EXPECT_TRUE(sawY);
}

TEST(ContextSimplify, KeepsUndecidableGuard) {
  StmtPtr s = ifs(eqE(iv("i"), iv("j")), {sassign("x", fc(1.0))});
  IntegerSet c(std::vector<std::string>{});
  c.addGE(AffineExpr::var("i") - AffineExpr(1));
  StmtPtr r = contextSimplify(*s, c, ctxN());
  ASSERT_TRUE(r);
  EXPECT_EQ(countIfs(*r), 1u);
}

TEST(ContextSimplify, LoopBoundsEnrichContext) {
  // for i = 5..N: if (i >= 3) ... - the loop bound proves the guard.
  StmtPtr s = loopS("i", ic(5), iv("N"),
                    {ifs(geE(iv("i"), ic(3)), {sassign("x", fc(1.0))})});
  IntegerSet c(std::vector<std::string>{});
  StmtPtr r = contextSimplify(*s, c, ctxN());
  ASSERT_TRUE(r);
  EXPECT_EQ(countIfs(*r), 0u);
}

TEST(ContextSimplify, NonAffineGuardUntouched) {
  StmtPtr s = ifs(gtE(sloadf("t"), fc(0.0)), {sassign("x", fc(1.0))});
  IntegerSet c(std::vector<std::string>{});
  StmtPtr r = contextSimplify(*s, c, ctxN());
  EXPECT_EQ(countIfs(*r), 1u);
}

TEST(IndexSetSplit, UnswitchesPointGuard) {
  // for k = 1..N { if (k == j) A[k] = 1 else A[k] = 2 } split at j.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1))});
  p.body = blockS({loopS(
      "j", ic(1), iv("N"),
      {loopS("k", ic(1), iv("N"),
             {ifelse(eqE(iv("k"), iv("j")),
                     {aassign("A", {iv("k")}, fc(1.0))},
                     {aassign("A", {iv("k")},
                              add(load("A", {iv("k")}), fc(2.0)))})})})});
  p.numberAssignments();
  Program q = indexSetSplit(p, "k", AffineExpr::var("j"), ctxN());
  // The point guard disappears entirely (the range guard on j remains).
  std::size_t eqGuards = 0;
  forEachStmt(*q.body, [&](const Stmt& st) {
    if (st.kind() == StmtKind::If &&
        st.cond()->kind() == ExprKind::Compare &&
        st.cond()->cmpOp() == CmpOp::EQ)
      ++eqGuards;
  });
  EXPECT_EQ(eqGuards, 0u);
  // Semantics preserved.
  auto init = [](interp::Machine& m) {
    for (auto& v : m.array("A").data()) v = 0.5;
  };
  interp::Machine a = interp::runProgram(p, {{"N", 9}}, init);
  interp::Machine b = interp::runProgram(q, {{"N", 9}}, init);
  EXPECT_TRUE(interp::arraysBitwiseEqual(a, b, "A"));
}

TEST(IndexSetSplit, MissingLoopThrows) {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1))});
  p.body = blockS({loopS("i", ic(1), iv("N"),
                         {aassign("A", {iv("i")}, fc(1.0))})});
  p.numberAssignments();
  EXPECT_THROW(indexSetSplit(p, "z", AffineExpr(3), ctxN()), InternalError);
}

TEST(IndexSetSplit, CholeskyTiledBoundaryStep) {
  // The real use: unswitch the k == j-1 boundary step out of the tiled
  // Cholesky's inner update loop. Result must be bit-equal and run
  // fewer dynamic instructions (branch-free update loops).
  kernels::KernelBundle b = kernels::buildCholesky({4});
  Program split = indexSetSplit(
      b.tiled, "k", AffineExpr::var("j") - AffineExpr(1), ctxN());

  std::int64_t n = 13;
  auto a0 = kernels::native::spdMatrix(n, 3);
  auto runCount = [&](const ir::Program& p, interp::CountingObserver* obs) {
    interp::Machine m(p, {{"N", n}});
    m.array("A").data() = a0;
    interp::Interpreter it(p, m, obs);
    it.run();
    return m.array("A").data();
  };
  interp::CountingObserver before, after;
  auto r1 = runCount(b.tiled, &before);
  auto r2 = runCount(split, &after);
  EXPECT_EQ(r1, r2);
  EXPECT_LT(after.totalInstructions(), before.totalInstructions());
  EXPECT_LT(after.branches, before.branches);
}

}  // namespace
}  // namespace fixfuse::core
