// Tests for the classic enabling transforms: peeling, unimodular
// skew/permute, rectangular tiling, scalarization. Every transform is
// validated by interpreting original and transformed programs on random
// inputs.
#include <gtest/gtest.h>

#include "core/transforms.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "support/error.h"
#include "support/rng.h"

namespace fixfuse::core {
namespace {

using namespace fixfuse::ir;
using interp::Machine;

void randomInit(Machine& m, const ir::Program& p, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (const auto& decl : p.arrays) {
    if (!m.hasArray(decl.name)) continue;
    for (auto& v : m.array(decl.name).data()) v = rng.nextDouble(-2.0, 2.0);
  }
}

::testing::AssertionResult equivalent(
    const ir::Program& a, const ir::Program& b,
    const std::map<std::string, std::int64_t>& params, std::uint64_t seed = 1) {
  Machine ma =
      interp::runProgram(a, params, [&](Machine& m) { randomInit(m, a, seed); });
  Machine mb =
      interp::runProgram(b, params, [&](Machine& m) { randomInit(m, b, seed); });
  for (const auto& decl : a.arrays) {
    if (!b.hasArray(decl.name)) continue;
    // Bitwise: NaN-producing programs must still compare equal to
    // themselves (NaN != NaN breaks a tolerance-0 check).
    if (!interp::arraysBitwiseEqual(ma, mb, decl.name))
      return ::testing::AssertionFailure()
             << "array " << decl.name << " differs bitwise" << "\n--- b:\n"
             << printProgram(b);
  }
  return ::testing::AssertionSuccess();
}

/// do i=1,N { do j=1,i { A(i,j) = A(i,j) + B(j,i) } } - triangular nest.
Program triangularProgram() {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.declareArray("B", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {loopS("j", ic(1), iv("i"),
             {aassign("A", {iv("i"), iv("j")},
                      add(load("A", {iv("i"), iv("j")}),
                          load("B", {iv("j"), iv("i")})))})})});
  p.numberAssignments();
  return p;
}

/// 1-D heat-equation sweep: do t=0,M { do i=1,N { A(i) = A(i) + c } }
/// with a loop-carried pattern when skewed.
Program timeLoopProgram() {
  Program p;
  p.params = {"M", "N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "t", ic(0), iv("M"),
      {loopS("i", ic(1), iv("N"),
             {aassign("A", {iv("i")},
                      add(load("A", {iv("i")}),
                          load("A", {sub(iv("i"), ic(1))})))})})});
  p.numberAssignments();
  return p;
}

TEST(PerfectLoopChain, FindsChain) {
  Program p = triangularProgram();
  auto chain = perfectLoopChain(p);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0]->loopVar(), "i");
  EXPECT_EQ(chain[1]->loopVar(), "j");
}

TEST(Peel, LastIterationSplitOff) {
  Program p = triangularProgram();
  Program peeled = peelLastIteration(p, "i");
  EXPECT_TRUE(equivalent(p, peeled, {{"N", 7}}));
  EXPECT_TRUE(equivalent(p, peeled, {{"N", 1}}));
  // The peeled program's top loop runs to N-1.
  auto chain = perfectLoopChain(peeled);
  EXPECT_EQ(chain[0]->upperBound()->str(), "(N + -1)");
}

TEST(Peel, WrongLoopNameThrows) {
  Program p = triangularProgram();
  EXPECT_THROW(peelLastIteration(p, "z"), InternalError);
}

TEST(Unimodular, IdentityIsNoop) {
  Program p = triangularProgram();
  Program q = unimodularTransform(p, IntMatrix::identity(2), {"u", "v"});
  EXPECT_TRUE(equivalent(p, q, {{"N", 8}}));
}

TEST(Unimodular, LoopInterchangeOnIndependentNest) {
  // The triangular updates are independent across iterations: interchange
  // is legal and must preserve results.
  Program p = triangularProgram();
  Program q = unimodularTransform(p, IntMatrix{{0, 1}, {1, 0}}, {"u", "v"});
  EXPECT_TRUE(equivalent(p, q, {{"N", 8}}));
}

TEST(Unimodular, SkewPreservesRecurrence) {
  // Skew (t,i) -> (t, t+i): the classic time-skew; always legal (it is a
  // unimodular re-indexing followed by a lexicographic scan that respects
  // the original order of dependent iterations for this left-looking
  // recurrence).
  Program p = timeLoopProgram();
  Program q = unimodularTransform(p, IntMatrix{{1, 0}, {1, 1}}, {"u", "v"});
  EXPECT_TRUE(equivalent(p, q, {{"M", 4}, {"N", 9}}));
}

TEST(Unimodular, RejectsNonUnimodular) {
  Program p = triangularProgram();
  EXPECT_THROW(unimodularTransform(p, IntMatrix{{2, 0}, {0, 1}}, {"u", "v"}),
               InternalError);
}

TEST(Tile, RectangularNest) {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {loopS("j", ic(1), iv("N"),
             {aassign("A", {iv("i"), iv("j")},
                      add(load("A", {iv("i"), iv("j")}), fc(1.0)))})})});
  p.numberAssignments();
  for (std::int64_t t : {2, 3, 5, 16}) {
    Program q = tileRectangular(p, {t, t});
    EXPECT_TRUE(equivalent(p, q, {{"N", 13}})) << "tile " << t;
  }
}

TEST(Tile, TriangularNestClipsCorrectly) {
  Program p = triangularProgram();
  for (std::int64_t t : {2, 4, 7}) {
    Program q = tileRectangular(p, {t, t});
    EXPECT_TRUE(equivalent(p, q, {{"N", 11}})) << "tile " << t;
    EXPECT_TRUE(equivalent(p, q, {{"N", 2}})) << "tile " << t;
  }
}

TEST(Tile, PartialTiling) {
  Program p = triangularProgram();
  Program q = tileRectangular(p, {3});  // tile only the outer loop
  EXPECT_TRUE(equivalent(p, q, {{"N", 10}}));
  Program r = tileRectangular(p, {1, 4});  // tile only the inner loop
  EXPECT_TRUE(equivalent(p, r, {{"N", 10}}));
}

TEST(Tile, SizeOneIsIdentityShape) {
  Program p = triangularProgram();
  Program q = tileRectangular(p, {1, 1});
  EXPECT_TRUE(equivalent(p, q, {{"N", 9}}));
  // No counter loops introduced.
  auto chain = perfectLoopChain(q);
  EXPECT_EQ(chain[0]->loopVar(), "i");
}

TEST(Tile, RejectsNonPositiveSizes) {
  Program p = triangularProgram();
  EXPECT_THROW(tileRectangular(p, {0}), InternalError);
}

TEST(Scalarize, JacobiStyleTemp) {
  // L(j) = expr; A(j) = L(j): L is write-then-read at equal subscripts.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("L", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "j", ic(1), iv("N"),
      {aassign("L", {iv("j")}, mul(load("A", {iv("j")}), fc(0.25))),
       aassign("A", {iv("j")}, load("L", {iv("j")}))})});
  p.numberAssignments();
  Program q = scalarizeArray(p, "L", "l");
  EXPECT_FALSE(q.hasArray("L"));
  EXPECT_TRUE(q.hasScalar("l"));
  EXPECT_TRUE(equivalent(p, q, {{"N", 12}}));
}

TEST(Scalarize, RejectsCrossIterationUse) {
  // A(j) = L(j-1): reads a value produced in a previous iteration.
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("L", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "j", ic(1), iv("N"),
      {aassign("L", {iv("j")}, load("A", {iv("j")})),
       aassign("A", {iv("j")}, load("L", {imax(sub(iv("j"), ic(1)), ic(0))}))})});
  p.numberAssignments();
  EXPECT_THROW(scalarizeArray(p, "L", "l"), UnsupportedError);
}

TEST(Scalarize, RejectsUndominatedRead) {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("L", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "j", ic(1), iv("N"),
      {aassign("A", {iv("j")}, load("L", {iv("j")}))})});
  p.numberAssignments();
  EXPECT_THROW(scalarizeArray(p, "L", "l"), UnsupportedError);
}

TEST(Compose, PeelThenTile) {
  Program p = triangularProgram();
  Program peeled = peelLastIteration(p, "i");
  // After peeling, the loop remainder can be tiled.
  Program tiled = tileRectangular(peeled, {4, 4});
  EXPECT_TRUE(equivalent(p, tiled, {{"N", 13}}));
}

TEST(Compose, SkewPermuteTile) {
  // The Jacobi recipe shape: skew then tile all loops.
  Program p = timeLoopProgram();
  Program skewed = unimodularTransform(p, IntMatrix{{1, 0}, {1, 1}},
                                       {"u", "v"});
  Program tiled = tileRectangular(skewed, {2, 8});
  EXPECT_TRUE(equivalent(p, tiled, {{"M", 5}, {"N", 16}}));
}

}  // namespace
}  // namespace fixfuse::core
