// Golden validation of the dependence layer: violatedDepPairs answers
// are compared against a brute-force oracle that enumerates all instance
// pairs at concrete parameter values and checks the definition directly
// (subscript equality + original order + reversed execution order).
//
// This exercises the full stack underneath FixDeps - access extraction,
// per-dimension subscripts, exec positions with tile existentials, the
// shared-prefix original-order condition and the lexLess encodings -
// against first principles.
#include <gtest/gtest.h>

#include <set>

#include "deps/access.h"
#include "deps/analysis.h"
#include "deps/nestsystem.h"
#include "ir/rewrite.h"
#include "support/checked.h"
#include "support/rng.h"

namespace fixfuse::deps {
namespace {

using namespace fixfuse::ir;
using poly::AffineExpr;
using poly::IntegerSet;

AffineExpr V(const std::string& n) { return AffineExpr::var(n); }
AffineExpr C(std::int64_t k) { return AffineExpr(k); }

/// Concrete execution position of a nest instance under its tile sizes.
std::vector<std::int64_t> execPosOf(const NestSystem& sys, std::size_t nest,
                                    const std::map<std::string, std::int64_t>& bind) {
  const PerfectNest& n = sys.nests[nest];
  std::vector<std::int64_t> F;
  for (const auto& e : n.embed.outputs) F.push_back(e.evaluate(bind));
  std::vector<std::int64_t> pos(F.size());
  for (std::size_t j = 0; j < F.size(); ++j) {
    TileSize t = n.tileSizes.empty() ? TileSize::of(1) : n.tileSizes[j];
    if (t.isUnit()) {
      pos[j] = F[j];
      continue;
    }
    // Per-slice origin: fused lower bound with outer fused coords = F.
    AffineExpr lb = sys.isBounds[j].first;
    std::map<std::string, std::int64_t> outer = bind;
    for (std::size_t u = 0; u < j; ++u) outer[sys.isVars[u]] = F[u];
    std::int64_t o = lb.evaluate(outer);
    pos[j] = t.isFull() ? o : o + floorDiv(F[j] - o, t.value);
  }
  return pos;
}

/// Brute-force the violated pairs of (name, kind) between nests k < kp.
std::set<std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>>>
bruteViolated(const NestSystem& sys, std::size_t k, std::size_t kp,
              const std::string& name, DepKind kind,
              const std::map<std::string, std::int64_t>& params) {
  auto srcAll = collectAccesses(sys.nests[k]);
  auto tgtAll = collectAccesses(sys.nests[kp]);
  std::vector<Access> srcs = kind == DepKind::Anti ? readsOf(srcAll, name)
                                                   : writesOf(srcAll, name);
  std::vector<Access> tgts = kind == DepKind::Flow ? readsOf(tgtAll, name)
                                                   : writesOf(tgtAll, name);
  std::size_t shared = sharedPrefixDepth(sys, k, kp);

  std::set<std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>>>
      out;
  for (const auto& sa : srcs)
    for (const auto& ta : tgts) {
      sa.instances.forEachPointAt(params, [&](const std::vector<std::int64_t>& sp) {
        std::map<std::string, std::int64_t> sb = params;
        for (std::size_t d = 0; d < sys.nests[k].vars.size(); ++d)
          sb[sys.nests[k].vars[d]] = sp[d];
        ta.instances.forEachPointAt(params, [&](const std::vector<std::int64_t>& tp) {
          std::map<std::string, std::int64_t> tb = params;
          for (std::size_t d = 0; d < sys.nests[kp].vars.size(); ++d)
            tb[sys.nests[kp].vars[d]] = tp[d];
          // Subscript match (per-dimension; Any matches everything).
          FIXFUSE_CHECK(sa.subs.size() == ta.subs.size(), "rank");
          for (std::size_t d = 0; d < sa.subs.size(); ++d) {
            if (!sa.subs[d].isAffine() || !ta.subs[d].isAffine()) continue;
            if (sa.subs[d].expr.evaluate(sb) != ta.subs[d].expr.evaluate(tb))
              return;
          }
          // Original order: shared prefix of src <=lex that of tgt.
          for (std::size_t d = 0; d < shared; ++d) {
            std::int64_t a = sp[d], b = tp[d];
            if (a < b) break;
            if (a > b) return;
          }
          // Violation: exec(tgt) strictly lexicographically before exec(src).
          auto es = execPosOf(sys, k, sb);
          auto et = execPosOf(sys, kp, tb);
          if (std::lexicographical_compare(et.begin(), et.end(), es.begin(),
                                           es.end()))
            out.insert({sp, tp});
        });
      });
    }
  return out;
}

/// The analysis's violated pairs, as (src instance, tgt instance) points.
std::set<std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>>>
analysisViolated(const NestSystem& sys, std::size_t k, std::size_t kp,
                 const std::string& name, DepKind kind,
                 const std::map<std::string, std::int64_t>& params) {
  std::set<std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>>>
      out;
  for (const auto& pair : violatedDepPairs(sys, k, kp, name, kind)) {
    std::size_t ns = pair.srcVars.size(), nt = pair.tgtVars.size();
    for (const auto& pt : pair.rel.pointsAt(params)) {
      std::vector<std::int64_t> sp(pt.begin(),
                                   pt.begin() + static_cast<std::ptrdiff_t>(ns));
      std::vector<std::int64_t> tp(
          pt.begin() + static_cast<std::ptrdiff_t>(ns),
          pt.begin() + static_cast<std::ptrdiff_t>(ns + nt));
      out.insert({sp, tp});
    }
  }
  return out;
}

struct Scenario {
  std::string label;
  std::int64_t shift;       // subscript shift of the L2 read/write
  DepKind kind;
  std::vector<TileSize> srcTiles;  // tiling applied to nest 0
  bool shared;               // model a shared container loop?
};

class BruteForceDeps : public ::testing::TestWithParam<Scenario> {};

NestSystem scenarioSystem(const Scenario& sc) {
  NestSystem sys;
  sys.ctx.addParam("N", 4, 100000);
  sys.decls.params = {"N"};
  sys.decls.declareArray("A", {add(iv("N"), ic(8))});
  sys.decls.declareArray("B", {add(iv("N"), ic(8))});
  sys.decls.declareArray("Cc", {add(iv("N"), ic(8))});
  sys.decls.body = blockS({});
  sys.isVars = {"i"};
  sys.isBounds = {{C(2), V("N")}};

  PerfectNest l1;
  l1.vars = {"i"};
  l1.domain = IntegerSet({"i"});
  l1.domain.addRange("i", C(2), V("N"));
  l1.embed = AffineMap{{V("i")}};
  PerfectNest l2 = l1;

  ExprPtr shifted = add(iv("i"), ic(sc.shift));
  if (sc.kind == DepKind::Anti) {
    // L1 reads A(i+shift), L2 writes A(i).
    l1.body = blockS({aassign("B", {iv("i")}, load("A", {shifted}))});
    l2.body = blockS({aassign("A", {iv("i")}, load("Cc", {iv("i")}))});
  } else if (sc.kind == DepKind::Flow) {
    // L1 writes A(i), L2 reads A(i+shift).
    l1.body = blockS({aassign("A", {iv("i")}, load("B", {iv("i")}))});
    l2.body = blockS({aassign("Cc", {iv("i")}, load("A", {shifted}))});
  } else {
    // Output: both write.
    l1.body = blockS({aassign("A", {shifted}, load("B", {iv("i")}))});
    l2.body = blockS({aassign("A", {iv("i")}, load("Cc", {iv("i")}))});
  }
  l1.tileSizes = sc.srcTiles;
  if (sc.shared) {
    l1.sharedPrefix = 1;
    l2.sharedPrefix = 1;
  }
  sys.nests = {std::move(l1), std::move(l2)};
  int id = 0;
  for (auto& n : sys.nests)
    forEachStmt(*n.body, [&](const Stmt& s) {
      if (s.kind() == StmtKind::Assign)
        const_cast<Stmt&>(s).setAssignId(id++);
    });
  return sys;
}

TEST_P(BruteForceDeps, AnalysisMatchesOracle) {
  const Scenario& sc = GetParam();
  NestSystem sys = scenarioSystem(sc);
  for (std::int64_t n : {5, 9, 12}) {
    std::map<std::string, std::int64_t> params{{"N", n}};
    auto oracle = bruteViolated(sys, 0, 1, "A", sc.kind, params);
    auto got = analysisViolated(sys, 0, 1, "A", sc.kind, params);
    EXPECT_EQ(got, oracle) << sc.label << " N=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, BruteForceDeps,
    ::testing::Values(
        Scenario{"flow+1", 1, DepKind::Flow, {}, false},
        Scenario{"flow+3", 3, DepKind::Flow, {}, false},
        Scenario{"flow-1", -1, DepKind::Flow, {}, false},
        Scenario{"flow0", 0, DepKind::Flow, {}, false},
        Scenario{"flow+2tiled2", 2, DepKind::Flow, {TileSize::of(2)}, false},
        Scenario{"flow+2tiled3", 2, DepKind::Flow, {TileSize::of(3)}, false},
        Scenario{"flow+2tiled4", 2, DepKind::Flow, {TileSize::of(4)}, false},
        Scenario{"flow+1full", 1, DepKind::Flow, {TileSize::full()}, false},
        Scenario{"anti-1", -1, DepKind::Anti, {}, false},
        Scenario{"anti-2", -2, DepKind::Anti, {}, false},
        Scenario{"anti+1", 1, DepKind::Anti, {}, false},
        Scenario{"output-1", -1, DepKind::Output, {}, false},
        Scenario{"output+1", 1, DepKind::Output, {}, false},
        Scenario{"flow+1shared", 1, DepKind::Flow, {}, true},
        Scenario{"anti-1shared", -1, DepKind::Anti, {}, true},
        Scenario{"flow+2tiled2shared", 2, DepKind::Flow, {TileSize::of(2)},
                 true}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      std::string s = info.param.label;
      for (auto& c : s)
        if (c == '+') c = 'p'; else if (c == '-') c = 'm';
      return s;
    });

}  // namespace
}  // namespace fixfuse::deps
