// Tests for the dependence substrate: nest systems, access extraction,
// fusion-preventing dependence sets, distance bounds, tiling legality.
#include <gtest/gtest.h>

#include "deps/access.h"
#include "deps/analysis.h"
#include "deps/nestsystem.h"
#include "ir/rewrite.h"
#include "support/error.h"

namespace fixfuse::deps {
namespace {

using namespace fixfuse::ir;
using poly::AffineExpr;
using poly::IntegerSet;

AffineExpr V(const std::string& n) { return AffineExpr::var(n); }
AffineExpr C(std::int64_t k) { return AffineExpr(k); }

/// Two 1-D nests over i = 1..N:
///   L1: A(i) = B(i) + 1
///   L2: C(i) = A(i + shift) * 2
NestSystem makeShiftSystem(std::int64_t shift) {
  NestSystem sys;
  sys.ctx.addParam("N", 4, 100000);
  sys.decls.params = {"N"};
  sys.decls.declareArray("A", {add(iv("N"), ic(2))});
  sys.decls.declareArray("B", {add(iv("N"), ic(2))});
  sys.decls.declareArray("C", {add(iv("N"), ic(2))});
  sys.decls.body = blockS({});
  sys.isVars = {"i"};
  sys.isBounds = {{C(1), V("N")}};

  PerfectNest l1;
  l1.vars = {"i"};
  l1.domain = IntegerSet({"i"});
  l1.domain.addRange("i", C(1), V("N"));
  l1.body = blockS({aassign("A", {iv("i")},
                            add(load("B", {iv("i")}), fc(1.0)))});
  l1.embed = AffineMap{{V("i")}};

  PerfectNest l2;
  l2.vars = {"i"};
  l2.domain = IntegerSet({"i"});
  l2.domain.addRange("i", C(1), V("N"));
  l2.body = blockS({aassign(
      "C", {iv("i")},
      mul(load("A", {add(iv("i"), ic(shift))}), fc(2.0)))});
  l2.embed = AffineMap{{V("i")}};

  sys.nests = {std::move(l1), std::move(l2)};
  // Number assignments per nest.
  int id = 0;
  for (auto& n : sys.nests)
    ir::forEachStmt(*n.body, [&](const Stmt& s) {
      if (s.kind() == StmtKind::Assign)
        const_cast<Stmt&>(s).setAssignId(id++);
    });
  return sys;
}

TEST(NestSystem, ValidateAcceptsShiftSystem) {
  NestSystem sys = makeShiftSystem(1);
  EXPECT_NO_THROW(sys.validate());
}

TEST(NestSystem, OriginIsLexmin) {
  NestSystem sys;
  sys.ctx.addParam("N", 4, 1000);
  sys.decls.params = {"N"};
  sys.decls.body = blockS({});
  sys.isVars = {"k", "j", "i"};
  // k: 1..N-1 ; j: k+1..N ; i: k..N  (the LU fused space)
  sys.isBounds = {{C(1), V("N") - C(1)},
                  {V("k") + C(1), V("N")},
                  {V("k"), V("N")}};
  auto o = sys.origin();
  EXPECT_EQ(o[0], C(1));
  EXPECT_EQ(o[1], C(2));
  EXPECT_EQ(o[2], C(1));
}

TEST(NestSystem, InvertEmbeddingSolvesTriangular) {
  // F(k, i) = (k, k+1, i): solve k from dim 0, i from dim 2.
  auto inv = invertEmbedding(AffineMap{{V("k"), V("k") + C(1), V("i")}},
                             {"k", "i"}, {"K", "J", "I"});
  ASSERT_TRUE(inv);
  EXPECT_EQ(inv->at("k"), V("K"));
  EXPECT_EQ(inv->at("i"), V("I"));
}

TEST(NestSystem, InvertEmbeddingHandlesOffsets) {
  // F(v) = (v + 3): v = I - 3.
  auto inv = invertEmbedding(AffineMap{{V("v") + C(3)}}, {"v"}, {"I"});
  ASSERT_TRUE(inv);
  EXPECT_EQ(inv->at("v"), V("I") - C(3));
}

TEST(NestSystem, InvertEmbeddingRejectsNonUnit) {
  auto inv = invertEmbedding(AffineMap{{V("v") * 2}}, {"v"}, {"I"});
  EXPECT_FALSE(inv.has_value());
}

TEST(NestSystem, ExecPositionUntiledIsEmbedding) {
  NestSystem sys = makeShiftSystem(1);
  ExecPosition p = execPosition(sys, 0, "_s");
  ASSERT_EQ(p.position.size(), 1u);
  EXPECT_EQ(p.position[0], V("i_s"));
  EXPECT_TRUE(p.existentials.empty());
}

TEST(NestSystem, ExecPositionFullTileIsOrigin) {
  NestSystem sys = makeShiftSystem(1);
  sys.nests[0].tileSizes = {TileSize::full()};
  ExecPosition p = execPosition(sys, 0, "_s");
  EXPECT_EQ(p.position[0], C(1));  // fused lower bound
  EXPECT_TRUE(p.existentials.empty());
}

TEST(NestSystem, ExecPositionConcreteTileUsesExistential) {
  NestSystem sys = makeShiftSystem(1);
  sys.nests[0].tileSizes = {TileSize::of(4)};
  ExecPosition p = execPosition(sys, 0, "_s");
  ASSERT_EQ(p.existentials.size(), 1u);
  EXPECT_EQ(p.constraints.size(), 3u);
  // Position = lb + c.
  EXPECT_EQ(p.position[0], C(1) + V(p.existentials[0]));
}

// --- access extraction ------------------------------------------------------

TEST(Access, CollectsReadsAndWrites) {
  NestSystem sys = makeShiftSystem(1);
  auto a1 = collectAccesses(sys.nests[0]);
  ASSERT_EQ(a1.size(), 2u);  // write A, read B
  EXPECT_TRUE(a1[0].isWrite);
  EXPECT_EQ(a1[0].name, "A");
  EXPECT_EQ(a1[0].subs[0].expr, V("i"));
  EXPECT_FALSE(a1[1].isWrite);
  EXPECT_EQ(a1[1].name, "B");
  auto a2 = collectAccesses(sys.nests[1]);
  auto reads = readsOf(a2, "A");
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].subs[0].expr, V("i") + C(1));
}

TEST(Access, AffineGuardRefinesInstances) {
  NestSystem sys = makeShiftSystem(1);
  // Wrap nest 0's assignment in "if (i >= 5)".
  PerfectNest& n = sys.nests[0];
  StmtPtr guarded = ifs(geE(iv("i"), ic(5)), {n.body->stmts()[0]->clone()});
  n.body = blockS({guarded->clone()});
  auto all = collectAccesses(n);
  auto writes = writesOf(all, "A");
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_TRUE(writes[0].guardExact);
  // The instance set must exclude i = 4.
  EXPECT_FALSE(writes[0].instances.hasPointAt({{"N", 10}}) &&
               [&] {
                 IntegerSet at4 = writes[0].instances;
                 at4.addEQ(V("i") - C(4));
                 return at4.hasPointAt({{"N", 10}});
               }());
}

TEST(Access, NonAffineGuardIsDroppedButFlagged) {
  NestSystem sys = makeShiftSystem(1);
  PerfectNest& n = sys.nests[0];
  sys.decls.declareScalar("temp", Type::Float);
  StmtPtr guarded = ifs(gtE(sloadf("temp"), fc(0.0)),
                        {n.body->stmts()[0]->clone()});
  n.body = blockS({guarded->clone()});
  auto writes = writesOf(collectAccesses(n), "A");
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_FALSE(writes[0].guardExact);
}

TEST(Access, NonAffineSubscriptFlagged) {
  NestSystem sys = makeShiftSystem(1);
  sys.decls.declareScalar("m", Type::Int);
  PerfectNest& n = sys.nests[0];
  n.body = blockS({aassign("A", {sloadi("m")}, fc(1.0))});
  int id = 0;
  ir::forEachStmt(*n.body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::Assign) const_cast<Stmt&>(s).setAssignId(id++);
  });
  auto writes = writesOf(collectAccesses(n), "A");
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_FALSE(writes[0].fullyAffine());
}

TEST(Access, ScalarAccesses) {
  NestSystem sys = makeShiftSystem(1);
  sys.decls.declareScalar("acc", Type::Float);
  PerfectNest& n = sys.nests[0];
  n.body = blockS({sassign("acc", add(sloadf("acc"), load("B", {iv("i")})))});
  int id = 0;
  ir::forEachStmt(*n.body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::Assign) const_cast<Stmt&>(s).setAssignId(id++);
  });
  auto all = collectAccesses(n);
  auto w = writesOf(all, "acc");
  auto r = readsOf(all, "acc");
  ASSERT_EQ(w.size(), 1u);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(w[0].isScalar);
}

TEST(Access, LoopInBodyThrows) {
  NestSystem sys = makeShiftSystem(1);
  PerfectNest& n = sys.nests[0];
  n.body = blockS({loopS("q", ic(1), ic(2), {sassign("q2", fc(0.0))})});
  EXPECT_THROW(collectAccesses(n), UnsupportedError);
}

// --- violated dependences ---------------------------------------------------

TEST(Analysis, ForwardShiftViolatesFlow) {
  // L2 reads A(i+1): written by L1 at iteration i+1 > i => violated.
  NestSystem sys = makeShiftSystem(1);
  auto pairs = violatedDepPairs(sys, 0, 1, "A", DepKind::Flow);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_FALSE(pairs[0].provablyEmpty(sys.ctx));
  // Concrete witness at N = 6: read at i_t, write at i_s = i_t + 1.
  auto pt = pairs[0].rel.lexminAt({{"N", 6}});
  ASSERT_TRUE(pt);
  EXPECT_EQ((*pt)[0], (*pt)[1] + 1);  // i_s = i_t + 1
}

TEST(Analysis, BackwardShiftPreservesFlow) {
  // L2 reads A(i-1): written at i-1 < i, not reversed by fusion.
  NestSystem sys = makeShiftSystem(-1);
  auto pairs = violatedDepPairs(sys, 0, 1, "A", DepKind::Flow);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].provablyEmpty(sys.ctx));
}

TEST(Analysis, ZeroShiftPreservedByBodyOrder) {
  // Same iteration: nest order preserves the dependence (strict <).
  NestSystem sys = makeShiftSystem(0);
  auto pairs = violatedDepPairs(sys, 0, 1, "A", DepKind::Flow);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].provablyEmpty(sys.ctx));
}

TEST(Analysis, ComputeWFindsViolations) {
  NestSystem sys = makeShiftSystem(1);
  WSet w = computeW(sys, 0);
  EXPECT_EQ(w.entries.size(), 1u);
  NestSystem ok = makeShiftSystem(-1);
  EXPECT_TRUE(computeW(ok, 0).empty());
}

TEST(Analysis, DistanceBoundsOfShift) {
  NestSystem sys = makeShiftSystem(3);
  WSet w = computeW(sys, 0);
  ASSERT_FALSE(w.empty());
  auto d = distanceBounds(sys, w);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_FALSE(d[0].zero);
  ASSERT_TRUE(d[0].bounded);
  // True max distance is 3; the doubling search may return 4.
  EXPECT_GE(d[0].bound, 3);
  EXPECT_LE(d[0].bound, 4);
}

TEST(Analysis, FullTileDischargesViolation) {
  NestSystem sys = makeShiftSystem(1);
  sys.nests[0].tileSizes = {TileSize::full()};
  EXPECT_TRUE(computeW(sys, 0).empty());
  EXPECT_TRUE(flowOutputViolationsFixed(sys));
}

TEST(Analysis, ConcreteTileAboveDistanceDischarges) {
  NestSystem sys = makeShiftSystem(1);
  sys.nests[0].tileSizes = {TileSize::of(2)};  // T = d + 1
  EXPECT_TRUE(computeW(sys, 0).empty());
}

TEST(Analysis, ConcreteTileAtDistanceDoesNot) {
  NestSystem sys = makeShiftSystem(2);     // d = 2
  sys.nests[0].tileSizes = {TileSize::of(2)};  // T = d: insufficient
  EXPECT_FALSE(computeW(sys, 0).empty());
}

TEST(Analysis, AntiDependenceDetection) {
  // L1 reads A(i-1); L2 writes A(i). Element i-1 is overwritten at fused
  // iteration i-1, strictly before L1's iteration i reads it => violated
  // anti-dependence (the 1-D analogue of Jacobi).
  NestSystem sys = makeShiftSystem(0);
  sys.nests[0].domain = IntegerSet({"i"});
  sys.nests[0].domain.addRange("i", AffineExpr(2), V("N"));
  sys.nests[0].body = blockS(
      {aassign("B", {iv("i")}, load("A", {sub(iv("i"), ic(1))}))});
  sys.nests[1].body = blockS({aassign("A", {iv("i")}, load("C", {iv("i")}))});
  int id = 0;
  for (auto& n : sys.nests)
    ir::forEachStmt(*n.body, [&](const Stmt& s) {
      if (s.kind() == StmtKind::Assign)
        const_cast<Stmt&>(s).setAssignId(id++);
    });
  auto anti = violatedAntiDeps(sys, 0, "A");
  ASSERT_EQ(anti.size(), 1u);
  EXPECT_FALSE(anti[0].provablyEmpty(sys.ctx));
  // Flow/output unaffected.
  EXPECT_TRUE(computeW(sys, 0).empty());
}

TEST(Analysis, ScalarDependenceIsAlwaysAliased) {
  // L1 writes scalar s at every i; L2 reads it at every i => the write at
  // i_s > i_t is reversed: violated flow on the scalar.
  NestSystem sys = makeShiftSystem(1);
  sys.decls.declareScalar("s", Type::Float);
  sys.nests[0].body = blockS({sassign("s", load("B", {iv("i")}))});
  sys.nests[1].body = blockS({aassign("C", {iv("i")}, sloadf("s"))});
  int id = 0;
  for (auto& n : sys.nests)
    ir::forEachStmt(*n.body, [&](const Stmt& s) {
      if (s.kind() == StmtKind::Assign)
        const_cast<Stmt&>(s).setAssignId(id++);
    });
  auto pairs = violatedDepPairs(sys, 0, 1, "s", DepKind::Flow);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_FALSE(pairs[0].provablyEmpty(sys.ctx));
}

TEST(Analysis, TilingLegalityUnitAlwaysLegal) {
  NestSystem sys = makeShiftSystem(1);
  EXPECT_TRUE(tilingLegalForNest(sys, 0, {TileSize::of(1)}));
  EXPECT_TRUE(tilingLegalForNest(sys, 0, {TileSize::full()}));
}

TEST(Analysis, TilingLegalityRejectsReversedRecurrence) {
  // L1: A(i) = A(i-1): loop-carried flow dependence with distance 1.
  // A concrete tile of size 2 runs the whole tile at its origin slot but
  // enumerates points in order, so it stays legal; legality must hold.
  NestSystem sys = makeShiftSystem(1);
  sys.nests[0].body = blockS(
      {aassign("A", {iv("i")}, load("A", {sub(iv("i"), ic(1))}))});
  int id = 0;
  ir::forEachStmt(*sys.nests[0].body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::Assign) const_cast<Stmt&>(s).setAssignId(id++);
  });
  EXPECT_TRUE(tilingLegalForNest(sys, 0, {TileSize::of(2)}));
  // A *backward* recurrence A(i) = A(i+1) is order-sensitive the other
  // way; points within a tile still run in ascending order so the
  // original (ascending) order is preserved: legal too.
  sys.nests[0].body = blockS(
      {aassign("A", {iv("i")}, load("A", {add(iv("i"), ic(1))}))});
  id = 0;
  ir::forEachStmt(*sys.nests[0].body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::Assign) const_cast<Stmt&>(s).setAssignId(id++);
  });
  EXPECT_TRUE(tilingLegalForNest(sys, 0, {TileSize::of(2)}));
}

TEST(Analysis, DepKindNames) {
  EXPECT_STREQ(depKindName(DepKind::Flow), "flow");
  EXPECT_STREQ(depKindName(DepKind::Output), "output");
  EXPECT_STREQ(depKindName(DepKind::Anti), "anti");
}

}  // namespace
}  // namespace fixfuse::deps
