// The persistent module-cache tier: DiskStore durability discipline
// (round-trip, corrupt/stale eviction, key-collision misses, capacity
// trim) and ModuleCache's use of it (cross-instance warm start with
// zero host-compiler runs, corrupt-entry rebuild, single compile under
// concurrency). The cross-instance tests stand in for cross-process
// ones: a second ModuleCache shares nothing in memory with the first,
// exactly like a restarted daemon.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "codegen/module_cache.h"
#include "codegen/native_module.h"
#include "ir/expr.h"
#include "ir/parse.h"
#include "ir/stmt.h"
#include "support/diskstore.h"

namespace fixfuse {
namespace {

namespace fs = std::filesystem;

#define SKIP_WITHOUT_HOST_COMPILER()                                   \
  if (!codegen::hostCompilerAvailable())                               \
  GTEST_SKIP() << "no usable host compiler ("                          \
               << codegen::hostCompilerUnavailableReason() << ")"

/// A fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("fixfuse-dstest-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

support::DiskStore::Blobs testBlobs() {
  return {{"so", std::string(4096, '\x7f') + "ELF-ish payload"},
          {"c", "int main(void) { return 0; }\n"}};
}

TEST(DiskStore, RoundTrip) {
  ScratchDir dir("roundtrip");
  support::DiskStore store(dir.str(), 1 << 20, "v1");
  const support::DiskStore::Key key{1, 2, 3};
  EXPECT_FALSE(store.load(key).has_value());
  store.store(key, testBlobs());
  const auto got = store.load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, testBlobs());
  const support::DiskStoreStats s = store.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.corrupt, 0u);
}

TEST(DiskStore, SurvivesReopen) {
  ScratchDir dir("reopen");
  const support::DiskStore::Key key{42, 43};
  {
    support::DiskStore store(dir.str(), 1 << 20, "v1");
    store.store(key, testBlobs());
  }
  support::DiskStore fresh(dir.str(), 1 << 20, "v1");
  const auto got = fresh.load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, testBlobs());
}

TEST(DiskStore, CorruptEntryEvictedLoudlyAndRebuilt) {
  ScratchDir dir("corrupt");
  support::DiskStore store(dir.str(), 1 << 20, "v1");
  const support::DiskStore::Key key{7};
  store.store(key, testBlobs());
  // Flip bytes in the middle of the entry: checksum must catch it.
  {
    std::fstream f(store.entryPath(key),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(200);
    f.write("XXXX", 4);
  }
  testing::internal::CaptureStderr();
  EXPECT_FALSE(store.load(key).has_value());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("evicting"), std::string::npos) << err;
  EXPECT_FALSE(fs::exists(store.entryPath(key)));  // unlinked, not retried
  EXPECT_EQ(store.stats().corrupt, 1u);
  // The slot is reusable: a fresh store round-trips again.
  store.store(key, testBlobs());
  EXPECT_TRUE(store.load(key).has_value());
}

TEST(DiskStore, TruncatedEntryEvicted) {
  ScratchDir dir("truncated");
  support::DiskStore store(dir.str(), 1 << 20, "v1");
  const support::DiskStore::Key key{9, 9, 9};
  store.store(key, testBlobs());
  fs::resize_file(store.entryPath(key), 64);
  testing::internal::CaptureStderr();
  EXPECT_FALSE(store.load(key).has_value());
  testing::internal::GetCapturedStderr();
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(store.entryPath(key)));
}

TEST(DiskStore, VersionMismatchInvalidates) {
  ScratchDir dir("version");
  const support::DiskStore::Key key{1234};
  {
    support::DiskStore v1(dir.str(), 1 << 20, "compiler-A");
    v1.store(key, testBlobs());
  }
  support::DiskStore v2(dir.str(), 1 << 20, "compiler-B");
  testing::internal::CaptureStderr();
  EXPECT_FALSE(v2.load(key).has_value());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("evicting"), std::string::npos) << err;
  EXPECT_EQ(v2.stats().corrupt, 1u);
  // Stale entries are unlinked so the new producer's store sticks.
  v2.store(key, testBlobs());
  EXPECT_TRUE(v2.load(key).has_value());
}

TEST(DiskStore, KeyHashCollisionIsPlainMiss) {
  ScratchDir dir("collision");
  support::DiskStore store(dir.str(), 1 << 20, "v1");
  const support::DiskStore::Key a{1};
  const support::DiskStore::Key b{2};
  store.store(a, testBlobs());
  // Simulate a file-name hash collision: b's slot holds a's entry.
  fs::rename(store.entryPath(a), store.entryPath(b));
  testing::internal::CaptureStderr();
  EXPECT_FALSE(store.load(b).has_value());
  const std::string err = testing::internal::GetCapturedStderr();
  // A collision is a silent miss - never a loud eviction, and never
  // a served artifact for the wrong key.
  EXPECT_EQ(err.find("evicting"), std::string::npos) << err;
  EXPECT_EQ(store.stats().corrupt, 0u);
  EXPECT_GE(store.stats().misses, 1u);
}

TEST(DiskStore, CapacityTrimEvictsOldestSilently) {
  ScratchDir dir("capacity");
  // Each entry is ~4.2 KB; a 16 KB bound keeps only the newest few.
  support::DiskStore store(dir.str(), 16 << 10, "v1");
  for (std::uint64_t i = 0; i < 8; ++i) {
    store.store({i}, testBlobs());
    // Distinct mtimes so "oldest" is well defined on coarse clocks.
    fs::last_write_time(store.entryPath({i}),
                        fs::file_time_type::clock::now() -
                            std::chrono::seconds(100 - i));
  }
  store.store({99}, testBlobs());
  std::uintmax_t total = 0;
  std::size_t entries = 0;
  for (const auto& de : fs::directory_iterator(dir.str()))
    if (de.is_regular_file()) {
      total += de.file_size();
      ++entries;
    }
  EXPECT_LE(total, 16u << 10);
  EXPECT_LT(entries, 9u);
  EXPECT_GT(store.stats().evictions, 0u);
  // The newest entry must have survived the trim.
  EXPECT_TRUE(store.load({99}).has_value());
}

// --- ModuleCache over the disk tier ----------------------------------------

ir::Program testProgram(double c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "program(N) {\n  double A[(N + 4)];\n"
                "  for i = 1 .. N {\n    A[i] = (A[i] + %g);\n  }\n}\n",
                c);
  return ir::parseProgram(buf);
}

TEST(ModuleCachePersistence, CrossInstanceWarmStartCompilesNothing) {
  SKIP_WITHOUT_HOST_COMPILER();
  ScratchDir dir("warmstart");
  const ir::Program p = testProgram(0.5);
  {
    codegen::ModuleCache cold(8, dir.str(), 1 << 30);
    cold.getOrCompile(p);
    EXPECT_EQ(cold.diskStats().stores, 1u);
  }
  const std::uint64_t compiles = codegen::hostCompileCount();
  codegen::ModuleCache warm(8, dir.str(), 1 << 30);  // a "restarted daemon"
  auto mod = warm.getOrCompile(p);
  ASSERT_NE(mod, nullptr);
  EXPECT_EQ(codegen::hostCompileCount(), compiles)
      << "warm start must not invoke the host compiler";
  EXPECT_EQ(warm.diskStats().hits, 1u);
  EXPECT_FALSE(mod->source().empty());  // the "c" blob came along
}

TEST(ModuleCachePersistence, CorruptEntryRebuiltLoudly) {
  SKIP_WITHOUT_HOST_COMPILER();
  ScratchDir dir("rebuild");
  const ir::Program p = testProgram(0.25);
  {
    codegen::ModuleCache cold(8, dir.str(), 1 << 30);
    cold.getOrCompile(p);
  }
  // Damage the single stored entry.
  for (const auto& de : fs::directory_iterator(dir.str())) {
    std::fstream f(de.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.write("CORRUPTCORRUPT", 14);
  }
  const std::uint64_t compiles = codegen::hostCompileCount();
  codegen::ModuleCache warm(8, dir.str(), 1 << 30);
  testing::internal::CaptureStderr();
  auto mod = warm.getOrCompile(p);
  const std::string err = testing::internal::GetCapturedStderr();
  ASSERT_NE(mod, nullptr);
  EXPECT_NE(err.find("evicting"), std::string::npos) << err;
  EXPECT_EQ(codegen::hostCompileCount(), compiles + 1)
      << "damaged entry must be rebuilt by a real compile";
  EXPECT_EQ(warm.diskStats().corrupt, 1u);
  // The rebuild re-persisted: a third instance warm-starts cleanly.
  codegen::ModuleCache third(8, dir.str(), 1 << 30);
  third.getOrCompile(p);
  EXPECT_EQ(codegen::hostCompileCount(), compiles + 1);
}

TEST(ModuleCachePersistence, StaleCompilerIdInvalidates) {
  SKIP_WITHOUT_HOST_COMPILER();
  ScratchDir dir("staleid");
  const ir::Program p = testProgram(0.125);
  {
    // An entry persisted by a "different compiler": same directory,
    // fabricated version tag.
    codegen::ModuleCache cold(8, dir.str(), 1 << 30);
    cold.getOrCompile(p);
  }
  // Rewrite the entry under a fabricated version so the real
  // moduleStoreVersion() mismatches.
  std::string entry;
  for (const auto& de : fs::directory_iterator(dir.str()))
    entry = de.path().string();
  ASSERT_FALSE(entry.empty());
  {
    support::DiskStore forger(dir.str(), 1 << 30, "ffmod-0 | other-cc 0.0");
    // Write a syntactically valid entry with the wrong version at some
    // key; then give it the real entry's file name.
    forger.store({1}, testBlobs());
    fs::remove(entry);
    fs::rename(forger.entryPath({1}), entry);
  }
  const std::uint64_t compiles = codegen::hostCompileCount();
  codegen::ModuleCache warm(8, dir.str(), 1 << 30);
  testing::internal::CaptureStderr();
  auto mod = warm.getOrCompile(p);
  testing::internal::GetCapturedStderr();
  ASSERT_NE(mod, nullptr);
  EXPECT_EQ(codegen::hostCompileCount(), compiles + 1)
      << "foreign-compiler entry must not be served";
}

TEST(ModuleCachePersistence, ConcurrentSameProgramCompilesOnce) {
  SKIP_WITHOUT_HOST_COMPILER();
  ScratchDir dir("concurrent");
  codegen::ModuleCache cache(8, dir.str(), 1 << 30);
  const ir::Program p = testProgram(0.75);
  const std::uint64_t compiles = codegen::hostCompileCount();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([&] {
      if (!cache.getOrCompile(p)) failures.fetch_add(1);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(codegen::hostCompileCount(), compiles + 1)
      << "single-flight must hold through the disk tier";
  EXPECT_EQ(cache.diskStats().stores, 1u);
}

}  // namespace
}  // namespace fixfuse
