// Golden-file check on the C backend: the emitted C for each kernel's
// *fixed* program (the post-FixDeps fused nest, the paper's Fig. 4
// analogues) is compared verbatim against tests/golden/<kernel>_fixed.c.
// Any change to the sink/fuse/FixDeps pipeline or to emit_c that alters
// the generated code shows up as a readable diff against a reviewed
// artifact instead of only as an interpreter mismatch.
//
// To refresh after an intentional change:
//   FIXFUSE_REGEN_GOLDEN=1 ./build/tests/emitc_golden_test
// then review the diff of tests/golden/ and commit it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "codegen/emit_c.h"
#include "kernels/common.h"

namespace fixfuse::kernels {
namespace {

std::string goldenPath(const std::string& kernel) {
  return std::string(FIXFUSE_TEST_DIR) + "/golden/" + kernel + "_fixed.c";
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void checkGolden(const std::string& kernel) {
  KernelBundle b = buildKernel(kernel, {/*tile=*/0});
  const std::string got =
      codegen::emitC(b.fixed, {kernel + "_fixed", /*standalone=*/true});

  const std::string path = goldenPath(kernel);
  if (std::getenv("FIXFUSE_REGEN_GOLDEN")) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }

  const std::string want = readFile(path);
  ASSERT_FALSE(want.empty())
      << "missing golden file " << path
      << " (run with FIXFUSE_REGEN_GOLDEN=1 to create it)";
  EXPECT_EQ(got, want) << "emitted C for the fixed " << kernel
                       << " program drifted from " << path;
}

TEST(EmitCGoldenTest, LuFixed) { checkGolden("lu"); }
TEST(EmitCGoldenTest, CholeskyFixed) { checkGolden("cholesky"); }
TEST(EmitCGoldenTest, QrFixed) { checkGolden("qr"); }
TEST(EmitCGoldenTest, JacobiFixed) { checkGolden("jacobi"); }

}  // namespace
}  // namespace fixfuse::kernels
