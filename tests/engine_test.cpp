// engine::Engine - the unified compile front door and its plan cache.
//
// Pins the cache discipline the rest of the repo relies on: structurally
// equal programs share one entry (full-key equality, never trusted
// hash), the verify init closure is NOT part of the key, concurrent
// same-fingerprint compiles build exactly once (single-flight), the
// bound is enforced with LRU eviction and honest counters, and cached
// handles execute bit-for-bit identically on all three interpreter
// backends. The fuzz section replays the FixDeps corpus through
// compileSystem: every accepted system, submitted twice, must hit on
// the second submission and produce byte-identical machines.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "ir/parse.h"
#include "planner/planner.h"
#include "support/error.h"
#include "support/thread_pool.h"
#include "fuzz_systems.h"

namespace fixfuse::engine {
namespace {

// The textual_pipeline example program: an imperfect nest with a real
// fusion-preventing flow dependence, fully handled by the planner.
const char* kProgramText = R"(
program(N) {
  double R[(N + 4)];
  double S[(N + 4)];
  for k = 1 .. N {
    for i = 1 .. N {
      R[i] = (R[i] + (0.5 * S[i]));
    }
    for i = 1 .. N {
      S[i] = (S[i] + R[min((i + 1), N)]);
    }
  }
}
)";

// Same shape, different constant: a distinct fingerprint.
const char* kProgramTextB = R"(
program(N) {
  double R[(N + 4)];
  double S[(N + 4)];
  for k = 1 .. N {
    for i = 1 .. N {
      R[i] = (R[i] + (0.25 * S[i]));
    }
    for i = 1 .. N {
      S[i] = (S[i] + R[min((i + 1), N)]);
    }
  }
}
)";

poly::ParamContext testContext() {
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 1000000);
  return ctx;
}

void initRS(interp::Machine& m) {
  double x = 0.05;
  for (auto& v : m.array("R").data()) v = (x += 0.13);
  for (auto& v : m.array("S").data()) v = (x -= 0.07);
}

CompileOptions verifiedOptions() {
  CompileOptions opts;
  opts.verify.enabled = true;
  opts.verify.paramSets = {{{"N", 12}}};
  opts.verify.init = [](interp::Machine& m,
                        const std::map<std::string, std::int64_t>&) {
    initRS(m);
  };
  return opts;
}

TEST(Engine, TextAndProgramEntriesShareOneCachedCompile) {
  Engine eng(8);
  poly::ParamContext ctx = testContext();
  CompileOptions opts = verifiedOptions();

  CompiledProgram cp1 = eng.compileText(kProgramText, ctx, opts);
  EXPECT_FALSE(cp1.cacheHit());
  support::CacheStats st = eng.cacheStats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 0u);
  EXPECT_GT(st.buildSeconds, 0.0);

  // The textual entry is compile() over parseProgram: the parsed program
  // keys identically, so the second submission is a pure hash lookup.
  CompiledProgram cp2 = eng.compile(ir::parseProgram(kProgramText), ctx, opts);
  EXPECT_TRUE(cp2.cacheHit());
  st = eng.cacheStats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(eng.cacheSize(), 1u);

  // Same immutable entry, not an equal copy.
  EXPECT_EQ(&cp1.fixed(), &cp2.fixed());
  EXPECT_EQ(&cp1.plan(), &cp2.plan());

  // The handle carries the full pipeline product set.
  EXPECT_FALSE(cp1.stats().passes.empty());
  EXPECT_FALSE(cp1.planSignature().empty());
  EXPECT_EQ(cp1.planSignature(), planner::planSignature(cp1.plan()));
  EXPECT_EQ(cp1.planSignature().rfind(cp1.plan().strategy, 0), 0u)
      << cp1.planSignature();

  // Tree and bytecode runs of the cached program are bit-identical.
  std::map<std::string, std::int64_t> params{{"N", 17}};
  interp::Machine mt = cp1.run(params, initRS, interp::Backend::Tree);
  interp::Machine mb = cp2.run(params, initRS, interp::Backend::Bytecode);
  std::string where;
  EXPECT_TRUE(interp::machineStateBitwiseEqual(cp1.tiled(), mt, mb, &where))
      << where;
}

TEST(Engine, VerifyInitClosureIsNotPartOfTheKey) {
  // Bound 64 = 16 shards x 4 entries: room for three distinct keys in
  // one shard. (A small bound like 8 means one entry per shard, and the
  // shard a key lands in varies per process - the bucket selector
  // hashes raw hash-consed pointers.)
  Engine eng(64);
  poly::ParamContext ctx = testContext();

  CompileOptions a = verifiedOptions();
  CompiledProgram cp1 = eng.compileText(kProgramText, ctx, a);
  EXPECT_FALSE(cp1.cacheHit());

  // A different init closure with the same paramSets shares the entry:
  // the cached products do not depend on init (verification only
  // checks), and the key deliberately excludes it.
  CompileOptions b = verifiedOptions();
  b.verify.init = [](interp::Machine& m,
                     const std::map<std::string, std::int64_t>&) {
    for (auto& v : m.array("R").data()) v = 1.0;
    for (auto& v : m.array("S").data()) v = 2.0;
  };
  CompiledProgram cp2 = eng.compileText(kProgramText, ctx, b);
  EXPECT_TRUE(cp2.cacheHit());

  // Different paramSets ARE part of the key: a fresh verified compile.
  CompileOptions c = verifiedOptions();
  c.verify.paramSets = {{{"N", 13}}};
  CompiledProgram cp3 = eng.compileText(kProgramText, ctx, c);
  EXPECT_FALSE(cp3.cacheHit());

  // So is the verification switch itself.
  CompileOptions d;
  CompiledProgram cp4 = eng.compileText(kProgramText, ctx, d);
  EXPECT_FALSE(cp4.cacheHit());

  support::CacheStats st = eng.cacheStats();
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(eng.cacheSize(), 3u);
}

TEST(Engine, IllegalRecommendedTilingIsRejectedLoudlyAndNotCached) {
  // For this program the plan's recommended tiling shape is not legal
  // (the fused loop carries a dependence plain rectangular tiling
  // breaks). With verification on, the engine's tiling stage must throw
  // VerificationError - fixed-or-rejected-loudly extends to tiling -
  // and a failed build must cache nothing.
  Engine eng(8);
  poly::ParamContext ctx = testContext();
  CompileOptions opts = verifiedOptions();
  opts.tile = 4;
  EXPECT_THROW(eng.compileText(kProgramText, ctx, opts),
               pipeline::VerificationError);
  EXPECT_EQ(eng.cacheSize(), 0u);
  // The same request fails again (nothing poisoned the cache with a
  // half-built entry) and the untiled compile still succeeds.
  EXPECT_THROW(eng.compileText(kProgramText, ctx, opts),
               pipeline::VerificationError);
  opts.tile = 0;
  EXPECT_FALSE(eng.compileText(kProgramText, ctx, opts).cacheHit());
  EXPECT_EQ(eng.cacheSize(), 1u);
}

TEST(Engine, ConcurrentSameProgramCompilesExactlyOnce) {
  Engine eng(16);
  poly::ParamContext ctx = testContext();
  ir::Program p = ir::parseProgram(kProgramText);
  const std::size_t kJobs = 16;
  std::map<std::string, std::int64_t> params{{"N", 15}};

  // N threads hammer one engine with the same program. The shard mutex
  // is held across the build (single-flight): losers wait for the
  // winner's entry instead of compiling their own.
  std::vector<std::vector<double>> results =
      support::parallelMapOrdered<std::vector<double>>(
          kJobs, 8, [&](std::size_t) {
            CompiledProgram cp = eng.compile(p, ctx);
            interp::Machine m =
                cp.run(params, initRS, interp::Backend::Bytecode);
            std::vector<double> out = m.array("R").data();
            const std::vector<double>& s = m.array("S").data();
            out.insert(out.end(), s.begin(), s.end());
            return out;
          });

  support::CacheStats st = eng.cacheStats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, kJobs - 1);
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(eng.cacheSize(), 1u);

  ASSERT_EQ(results.size(), kJobs);
  for (std::size_t i = 1; i < kJobs; ++i)
    EXPECT_TRUE(interp::bitsEqual(results[i], results[0])) << "job " << i;
}

TEST(Engine, BoundOneEvictsLeastRecentlyUsed) {
  Engine eng(1);
  EXPECT_EQ(eng.cacheBound(), 1u);
  EXPECT_EQ(eng.cacheShards(), 1u);
  poly::ParamContext ctx = testContext();
  ir::Program pa = ir::parseProgram(kProgramText);
  ir::Program pb = ir::parseProgram(kProgramTextB);

  EXPECT_FALSE(eng.compile(pa, ctx).cacheHit());  // miss, size 1
  EXPECT_FALSE(eng.compile(pb, ctx).cacheHit());  // miss, evicts A
  EXPECT_FALSE(eng.compile(pa, ctx).cacheHit());  // miss, evicts B
  EXPECT_TRUE(eng.compile(pa, ctx).cacheHit());   // hit

  support::CacheStats st = eng.cacheStats();
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(eng.cacheSize(), 1u);
}

TEST(Engine, CacheBoundComesFromEnv) {
  ::setenv("FIXFUSE_ENGINE_CACHE", "4", 1);
  Engine eng;
  EXPECT_EQ(eng.cacheBound(), 4u);
  ::unsetenv("FIXFUSE_ENGINE_CACHE");
  Engine def;
  EXPECT_EQ(def.cacheBound(), 256u);
}

// The FixDeps fuzz corpus through the engine front door: each accepted
// system submitted twice must hit the cache on the second submission
// and run bit-for-bit identically on every backend. Mirrors the
// PlannerFuzz idiom (UnsupportedError = rejected-loudly, not a bug).
TEST(Engine, FuzzCorpusSecondSubmissionHitsAndRunsBitwiseOnAllBackends) {
  Engine eng(128);
  const std::int64_t n = 13;
  std::map<std::string, std::int64_t> params{{"N", n}};
  int accepted = 0;

  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    tests::FuzzSystem fz = tests::randomSystem(seed);
    CompileOptions opts;
    opts.verify =
        tests::fuzzVerify(seed, 77, {static_cast<std::int64_t>(tests::kPad + 1), n});

    std::optional<CompiledProgram> compiled;
    try {
      compiled = eng.compileSystem(fz.sys, opts);
    } catch (const UnsupportedError&) {
      continue;  // outside Theorem 3/4: rejected loudly, never mis-compiled
    }
    CompiledProgram& cp = *compiled;
    ++accepted;

    CompiledProgram again = eng.compileSystem(fz.sys, opts);
    EXPECT_TRUE(again.cacheHit()) << "seed " << seed;
    EXPECT_EQ(&cp.fixed(), &again.fixed()) << "seed " << seed;

    auto init = [seed](interp::Machine& m) {
      tests::initFuzzArrays(m, seed, 77, n);
    };
    interp::Machine mt = cp.run(params, init, interp::Backend::Tree);
    interp::Machine mb = again.run(params, init, interp::Backend::Bytecode);
    std::string where;
    EXPECT_TRUE(interp::machineStateBitwiseEqual(cp.tiled(), mt, mb, &where))
        << "seed " << seed << ": " << where;

    // The repaired program matches the sequential reference bitwise.
    interp::Machine ms = interp::runProgram(cp.seq(), params, init);
    EXPECT_TRUE(
        interp::machinesBitwiseEqual(cp.seq(), ms, cp.tiled(), mb, &where))
        << "seed " << seed << ": " << where;

    // Native (emitC -> cc -> dlopen) on a sample of the corpus: a host
    // compile per unique program is too slow for all 40 seeds. Degrades
    // to bytecode without a host cc, which must still be bit-identical.
    if (seed % 8 == 0) {
      interp::Machine mn = cp.run(params, init, interp::Backend::Native);
      EXPECT_TRUE(interp::machineStateBitwiseEqual(cp.tiled(), mn, mb, &where))
          << "seed " << seed << ": " << where;
    }
  }
  // The corpus must actually exercise the engine, not skip everything.
  EXPECT_GT(accepted, 10);
}

}  // namespace
}  // namespace fixfuse::engine
