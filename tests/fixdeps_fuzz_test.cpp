// Randomised end-to-end validation of FixDeps: generate random systems
// of 2-3 perfect nests with random access offsets (flow, output and
// anti dependences in random combinations), run the pipeline through the
// PassManager with verification enabled and require the fixed fused
// program to reproduce the sequential semantics bit for bit at several
// problem sizes (the manager interprets and bit-compares after the
// fixdeps pass at every parameter set).
//
// Systems the pipeline cannot handle (e.g. multi-clobber anti-dependence
// patterns outside the Theorem 3/4 precondition) must fail *loudly* with
// UnsupportedError - never silently produce a wrong program; a wrong
// program would surface as pipeline::VerificationError and fail the
// test. The test tracks how many systems were fixed vs. rejected and
// requires a healthy fixed ratio.
#include <gtest/gtest.h>

#include "core/elim.h"
#include "core/fuse.h"
#include "deps/cache.h"
#include "fuzz_systems.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "ir/rewrite.h"
#include "pipeline/manager.h"
#include "support/error.h"
#include "support/rng.h"

namespace fixfuse::core {
namespace {

using namespace fixfuse::ir;
using deps::AffineMap;
using deps::NestSystem;
using deps::PerfectNest;
using poly::AffineExpr;
using poly::IntegerSet;
// The generator lives in tests/fuzz_systems.h, shared with the
// interpreter-backend differential tests.
using tests::FuzzSystem;
using tests::fuzzVerify;
using tests::kPad;
using tests::randomSystem;

TEST(FixDepsFuzz, RandomSystemsFixedOrRejectedLoudly) {
  int fixed = 0, rejected = 0, alreadyLegal = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    FuzzSystem fz = randomSystem(seed);

    pipeline::PassManager pm(fz.sys.ctx);
    pm.verifyWith(
        fuzzVerify(seed, 77, {static_cast<std::int64_t>(kPad + 1), 13, 20}));
    pm.add(pipeline::fixDepsPass());
    pipeline::PipelineState st;
    try {
      // A wrong fixed program throws pipeline::VerificationError here
      // (naming the pass, the array, and the parameters) and fails the
      // test; only UnsupportedError counts as an acceptable rejection.
      st = pm.runOnSystem(fz.sys);
    } catch (const UnsupportedError&) {
      ++rejected;  // loud rejection is acceptable; silence is not
      continue;
    }
    if (st.fixLog.tiles.empty() && st.fixLog.copies.empty()) ++alreadyLegal;
    else ++fixed;
    ASSERT_EQ(pm.stats().passes.size(), 1u);
    EXPECT_TRUE(pm.stats().passes[0].verified) << "seed " << seed;
    EXPECT_GT(pm.stats().passes[0].depQueries, 0u) << "seed " << seed;
  }
  // The pipeline must handle a solid majority of random systems.
  EXPECT_GE(fixed + alreadyLegal, 90) << "fixed=" << fixed
                                      << " legal=" << alreadyLegal
                                      << " rejected=" << rejected;
  EXPECT_GE(fixed, 20);
  ::testing::Test::RecordProperty("fixed", fixed);
  ::testing::Test::RecordProperty("alreadyLegal", alreadyLegal);
  ::testing::Test::RecordProperty("rejected", rejected);
  ::testing::Test::RecordProperty(
      "depCacheHitRatePct",
      static_cast<int>(deps::depCacheStats().hitRate() * 100));
}

TEST(FixDepsFuzz, TwoDimensionalSystems) {
  // 2-D variant: nests over (i, j) with random per-dimension offsets,
  // exercising multi-dimensional distance bounds, the D_i filtering and
  // 2-D copy guards.
  int fixed = 0, rejected = 0, alreadyLegal = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    SplitMix64 rng(seed * 1237);
    NestSystem sys;
    sys.ctx.addParam("N", 4, 100000);
    sys.decls.params = {"N"};
    std::vector<std::string> arrays{"A", "B"};
    for (const auto& a : arrays)
      sys.decls.declareArray(
          a, {add(iv("N"), ic(2 * kPad)), add(iv("N"), ic(2 * kPad))});
    sys.decls.body = blockS({});
    sys.isVars = {"i", "j"};
    sys.isBounds = {{AffineExpr(kPad), AffineExpr::var("N")},
                    {AffineExpr(kPad), AffineExpr::var("N")}};
    for (int k = 0; k < 2; ++k) {
      PerfectNest nest;
      nest.vars = {"i", "j"};
      nest.domain = IntegerSet({"i", "j"});
      nest.domain.addRange("i", AffineExpr(kPad), AffineExpr::var("N"));
      nest.domain.addRange("j", AffineExpr(kPad), AffineExpr::var("N"));
      const std::string dst = arrays[rng.nextBounded(2)];
      const std::string src = arrays[rng.nextBounded(2)];
      nest.body = blockS({aassign(
          dst,
          {add(iv("i"), ic(rng.nextInt(-1, 1))),
           add(iv("j"), ic(rng.nextInt(-1, 1)))},
          add(load(src, {add(iv("i"), ic(rng.nextInt(-1, 1))),
                         add(iv("j"), ic(rng.nextInt(-1, 1)))}),
              fc(1.0)))});
      nest.embed = AffineMap{{AffineExpr::var("i"), AffineExpr::var("j")}};
      sys.nests.push_back(std::move(nest));
    }
    int id = 0;
    for (auto& nest : sys.nests)
      forEachStmt(*nest.body, [&](const Stmt& s) {
        if (s.kind() == StmtKind::Assign)
          const_cast<Stmt&>(s).setAssignId(id++);
      });

    pipeline::PassManager pm(sys.ctx);
    pm.verifyWith(
        fuzzVerify(seed, 31, {static_cast<std::int64_t>(kPad + 2), 14}));
    pm.add(pipeline::fixDepsPass());
    pipeline::PipelineState st;
    try {
      st = pm.runOnSystem(sys);
    } catch (const UnsupportedError&) {
      ++rejected;
      continue;
    }
    if (st.fixLog.tiles.empty() && st.fixLog.copies.empty()) ++alreadyLegal;
    else ++fixed;
  }
  EXPECT_GE(fixed, 10) << "fixed=" << fixed << " legal=" << alreadyLegal
                       << " rejected=" << rejected;
  EXPECT_GE(fixed + alreadyLegal, 40);
}

TEST(FixDepsFuzz, BrokenFusionsAreDetectable) {
  // Sanity for the harness itself: among random systems, a good number
  // have fusions that are actually illegal before fixing (otherwise the
  // fuzz above would only be testing the no-op path).
  int broken = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    FuzzSystem fz = randomSystem(seed);
    ir::Program seq = generateSequentialProgram(fz.sys);
    ir::Program fusedRaw = generateFusedProgram(fz.sys);
    auto init = [&](interp::Machine& m) {
      SplitMix64 rng(seed * 31);
      for (const auto& decl : seq.arrays)
        if (m.hasArray(decl.name))
          for (auto& v : m.array(decl.name).data())
            v = rng.nextDouble(-2.0, 2.0);
    };
    interp::Machine ma = interp::runProgram(seq, {{"N", 16}}, init);
    interp::Machine mb = interp::runProgram(fusedRaw, {{"N", 16}}, init);
    for (const auto& decl : seq.arrays)
      if (!interp::arraysBitwiseEqual(ma, mb, decl.name)) {
        ++broken;
        break;
      }
  }
  EXPECT_GE(broken, 15);
}

}  // namespace
}  // namespace fixfuse::core
