// Exact FixDeps action logs for the paper kernels. The paper (Section 4,
// Table 1) is specific about *what* FixDeps does per kernel: LU Full-tiles
// the pivot-search nest ("tile size N"); Cholesky needs nothing; QR
// Full-tiles three nests; Jacobi inserts one copy array H_{A,1}. These
// tests pin the FixLog down field by field so a regression in ElimWW_WR
// or ElimRW cannot silently change the chosen actions while the output
// stays coincidentally correct.
#include <gtest/gtest.h>

#include "kernels/common.h"

namespace fixfuse::kernels {
namespace {

using core::FixLog;
using deps::DistanceBound;
using deps::TileSize;

void expectDist(const DistanceBound& d, bool zero, bool bounded,
                std::int64_t bound, const char* where) {
  EXPECT_EQ(d.zero, zero) << where;
  EXPECT_EQ(d.bounded, bounded) << where;
  if (bounded) {
    EXPECT_EQ(d.bound, bound) << where;
  }
}

void expectSizes(const std::vector<TileSize>& got,
                 const std::vector<std::string>& want, const char* where) {
  ASSERT_EQ(got.size(), want.size()) << where;
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i].str(), want[i]) << where << " dim " << i;
}

TEST(FixLogTest, LuFullTilesThePivotSearchNest) {
  KernelBundle b = buildLu({/*tile=*/0});
  const FixLog& log = b.fixLog;

  // Exactly one tile escalation, no copy arrays.
  ASSERT_EQ(log.tiles.size(), 1u);
  EXPECT_TRUE(log.copies.empty());

  const FixLog::TileAction& t = log.tiles[0];
  EXPECT_EQ(t.nest, 1u);
  EXPECT_EQ(t.wSize, 4u);  // violated flow/output pairs against the search
  EXPECT_FALSE(t.escalatedToFull);

  // Distances: zero/zero in the outer two fused dims, unbounded in the
  // third (the pivot row is data-dependent) -> sizes [1, 1, Full], the
  // paper's "tile size N" for the pivot-search i loop.
  ASSERT_EQ(t.dists.size(), 3u);
  expectDist(t.dists[0], true, true, 0, "lu dist 0");
  expectDist(t.dists[1], true, true, 0, "lu dist 1");
  expectDist(t.dists[2], false, false, 0, "lu dist 2");
  expectSizes(t.sizes, {"1", "1", "Full"}, "lu");
}

TEST(FixLogTest, CholeskyNeedsNoFixing) {
  KernelBundle b = buildCholesky({/*tile=*/0});
  // Paper Section 4.2: after sinking, Cholesky's fusion is already legal;
  // FixDeps must be a no-op.
  EXPECT_TRUE(b.fixLog.tiles.empty());
  EXPECT_TRUE(b.fixLog.copies.empty());
}

TEST(FixLogTest, QrFullTilesThreeNests) {
  KernelBundle b = buildQr({/*tile=*/0});
  const FixLog& log = b.fixLog;

  ASSERT_EQ(log.tiles.size(), 3u);
  EXPECT_TRUE(log.copies.empty());

  // ElimWW_WR visits nests from the last to the first; the norm /
  // reflector nests each need a Full dimension.
  const FixLog::TileAction& t0 = log.tiles[0];
  EXPECT_EQ(t0.nest, 5u);
  EXPECT_EQ(t0.wSize, 1u);
  EXPECT_FALSE(t0.escalatedToFull);
  ASSERT_EQ(t0.dists.size(), 3u);
  expectDist(t0.dists[0], true, true, 0, "qr nest5 dist 0");
  expectDist(t0.dists[1], true, true, 0, "qr nest5 dist 1");
  expectDist(t0.dists[2], false, false, 0, "qr nest5 dist 2");
  expectSizes(t0.sizes, {"1", "1", "Full"}, "qr nest5");

  const FixLog::TileAction& t1 = log.tiles[1];
  EXPECT_EQ(t1.nest, 3u);
  EXPECT_EQ(t1.wSize, 2u);
  EXPECT_FALSE(t1.escalatedToFull);
  ASSERT_EQ(t1.dists.size(), 3u);
  expectDist(t1.dists[0], true, true, 0, "qr nest3 dist 0");
  expectDist(t1.dists[1], false, false, 0, "qr nest3 dist 1");
  expectDist(t1.dists[2], true, true, 0, "qr nest3 dist 2");
  expectSizes(t1.sizes, {"1", "Full", "1"}, "qr nest3");

  const FixLog::TileAction& t2 = log.tiles[2];
  EXPECT_EQ(t2.nest, 1u);
  EXPECT_EQ(t2.wSize, 2u);
  EXPECT_FALSE(t2.escalatedToFull);
  ASSERT_EQ(t2.dists.size(), 3u);
  expectDist(t2.dists[0], true, true, 0, "qr nest1 dist 0");
  expectDist(t2.dists[1], true, true, 0, "qr nest1 dist 1");
  expectDist(t2.dists[2], false, false, 0, "qr nest1 dist 2");
  expectSizes(t2.sizes, {"1", "1", "Full"}, "qr nest1");
}

TEST(FixLogTest, JacobiInsertsOneCopyArray) {
  KernelBundle b = buildJacobi({/*tile=*/0});
  const FixLog& log = b.fixLog;

  // ElimRW only: one H_{A,1} copy, no tile escalations (paper Fig. 4d).
  EXPECT_TRUE(log.tiles.empty());
  ASSERT_EQ(log.copies.size(), 1u);

  const FixLog::CopyAction& c = log.copies[0];
  EXPECT_EQ(c.array, "A");
  EXPECT_EQ(c.copyArray, "H_A_1");
  EXPECT_EQ(c.readerNest, 0u);
  EXPECT_EQ(c.copiesInserted, 1u);
  EXPECT_EQ(c.readsRedirected, 2u);
}

// The PassManager's stats record must carry the same FixLog the bundle
// reports (the JSON `fix_log` section is rendered from it).
TEST(FixLogTest, PipelineStatsCarryTheLog) {
  KernelBundle b = buildLu({/*tile=*/0});
  ASSERT_EQ(b.stats.fixLog.tiles.size(), b.fixLog.tiles.size());
  EXPECT_EQ(b.stats.fixLog.tiles[0].nest, b.fixLog.tiles[0].nest);
  EXPECT_EQ(b.stats.fixLog.copies.size(), b.fixLog.copies.size());
}

}  // namespace
}  // namespace fixfuse::kernels
