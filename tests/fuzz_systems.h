// Shared random-system generator for the fuzz-style tests.
//
// Originally private to fixdeps_fuzz_test.cpp; extracted so the
// interpreter-backend differential tests can reuse the exact same
// program distribution (2-3 perfect 1-D nests over A/B/Cc with random
// access offsets) that exercises FixDeps. Keep the generation
// deterministic in `seed` - both test files rely on reproducible
// programs per seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "deps/nestsystem.h"
#include "interp/machine.h"
#include "ir/rewrite.h"
#include "ir/stmt.h"
#include "pipeline/manager.h"
#include "poly/set.h"
#include "support/rng.h"

namespace fixfuse::tests {

inline constexpr std::int64_t kPad = 8;  // array slack for shifted subscripts

/// One random 1-D statement: ArrayDst(i + wOff) = f(ArraySrc(i + rOff)).
inline ir::StmtPtr randomStmt(SplitMix64& rng,
                              const std::vector<std::string>& arrays,
                              std::string* dstOut) {
  using namespace fixfuse::ir;
  const std::string dst = arrays[rng.nextBounded(arrays.size())];
  const std::string src = arrays[rng.nextBounded(arrays.size())];
  std::int64_t wOff = rng.nextInt(-2, 2);
  std::int64_t rOff = rng.nextInt(-2, 2);
  *dstOut = dst;
  ExprPtr rd = load(src, {add(iv("i"), ic(rOff))});
  ExprPtr rhs = rng.nextBounded(2) ? add(rd, fc(1.0)) : mul(rd, fc(0.5));
  return aassign(dst, {add(iv("i"), ic(wOff))}, rhs);
}

struct FuzzSystem {
  deps::NestSystem sys;
  bool ok = false;
};

/// A random system of 2-3 perfect 1-D nests over arrays A/B/Cc with
/// random +-2 access offsets (flow, output and anti dependences in
/// random combinations). Deterministic per seed.
inline FuzzSystem randomSystem(std::uint64_t seed) {
  using namespace fixfuse::ir;
  using deps::AffineMap;
  using deps::PerfectNest;
  using poly::AffineExpr;
  using poly::IntegerSet;

  SplitMix64 rng(seed);
  FuzzSystem out;
  deps::NestSystem& sys = out.sys;
  sys.ctx.addParam("N", 4, 100000);
  sys.decls.params = {"N"};
  std::vector<std::string> arrays{"A", "B", "Cc"};
  for (const auto& a : arrays)
    sys.decls.declareArray(a, {add(iv("N"), ic(2 * kPad))});
  sys.decls.body = blockS({});
  sys.isVars = {"i"};
  sys.isBounds = {{AffineExpr(kPad), AffineExpr::var("N")}};

  std::size_t nests = 2 + rng.nextBounded(2);
  for (std::size_t k = 0; k < nests; ++k) {
    PerfectNest nest;
    nest.vars = {"i"};
    nest.domain = IntegerSet({"i"});
    nest.domain.addRange("i", AffineExpr(kPad), AffineExpr::var("N"));
    std::vector<StmtPtr> body;
    std::size_t stmts = 1 + rng.nextBounded(2);
    for (std::size_t s = 0; s < stmts; ++s) {
      std::string dst;
      body.push_back(randomStmt(rng, arrays, &dst));
    }
    nest.body = blockS(std::move(body));
    nest.embed = AffineMap{{AffineExpr::var("i")}};
    sys.nests.push_back(std::move(nest));
  }
  int id = 0;
  for (auto& nest : sys.nests)
    ir::forEachStmt(*nest.body, [&](const ir::Stmt& s) {
      if (s.kind() == ir::StmtKind::Assign)
        const_cast<ir::Stmt&>(s).setAssignId(id++);
    });
  out.ok = true;
  return out;
}

/// Deterministic random initialisation of the fuzz arrays for (seed, N).
inline void initFuzzArrays(interp::Machine& m, std::uint64_t seed,
                           std::uint64_t mult, std::int64_t n) {
  SplitMix64 rng(seed * mult + static_cast<std::uint64_t>(n));
  for (const char* name : {"A", "B", "Cc"})
    if (m.hasArray(name))
      for (auto& v : m.array(name).data()) v = rng.nextDouble(-2.0, 2.0);
}

/// Verification options replaying the historical fuzz comparison: every
/// array randomised per (seed, N), bit-compared at each problem size.
inline pipeline::VerifyOptions fuzzVerify(std::uint64_t seed,
                                          std::uint64_t mult,
                                          std::vector<std::int64_t> sizes) {
  pipeline::VerifyOptions vo;
  vo.enabled = true;
  for (std::int64_t n : sizes) vo.paramSets.push_back({{"N", n}});
  vo.init = [seed, mult](interp::Machine& m,
                         const std::map<std::string, std::int64_t>& params) {
    initFuzzArrays(m, seed, mult, params.at("N"));
  };
  return vo;
}

}  // namespace fixfuse::tests
