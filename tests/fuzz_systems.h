// Shared random-system generator for the fuzz-style tests.
//
// Originally private to fixdeps_fuzz_test.cpp; extracted so the
// interpreter-backend differential tests can reuse the exact same
// program distribution (2-3 perfect 1-D nests over A/B/Cc with random
// access offsets) that exercises FixDeps. Keep the generation
// deterministic in `seed` - both test files rely on reproducible
// programs per seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "deps/inspector.h"
#include "deps/nestsystem.h"
#include "interp/machine.h"
#include "ir/rewrite.h"
#include "ir/stmt.h"
#include "ir/validate.h"
#include "pipeline/manager.h"
#include "pipeline/pass.h"
#include "poly/set.h"
#include "support/rng.h"

namespace fixfuse::tests {

inline constexpr std::int64_t kPad = 8;  // array slack for shifted subscripts

/// One random 1-D statement: ArrayDst(i + wOff) = f(ArraySrc(i + rOff)).
inline ir::StmtPtr randomStmt(SplitMix64& rng,
                              const std::vector<std::string>& arrays,
                              std::string* dstOut) {
  using namespace fixfuse::ir;
  const std::string dst = arrays[rng.nextBounded(arrays.size())];
  const std::string src = arrays[rng.nextBounded(arrays.size())];
  std::int64_t wOff = rng.nextInt(-2, 2);
  std::int64_t rOff = rng.nextInt(-2, 2);
  *dstOut = dst;
  ExprPtr rd = load(src, {add(iv("i"), ic(rOff))});
  ExprPtr rhs = rng.nextBounded(2) ? add(rd, fc(1.0)) : mul(rd, fc(0.5));
  return aassign(dst, {add(iv("i"), ic(wOff))}, rhs);
}

struct FuzzSystem {
  deps::NestSystem sys;
  bool ok = false;
};

/// A random system of 2-3 perfect 1-D nests over arrays A/B/Cc with
/// random +-2 access offsets (flow, output and anti dependences in
/// random combinations). Deterministic per seed.
inline FuzzSystem randomSystem(std::uint64_t seed) {
  using namespace fixfuse::ir;
  using deps::AffineMap;
  using deps::PerfectNest;
  using poly::AffineExpr;
  using poly::IntegerSet;

  SplitMix64 rng(seed);
  FuzzSystem out;
  deps::NestSystem& sys = out.sys;
  sys.ctx.addParam("N", 4, 100000);
  sys.decls.params = {"N"};
  std::vector<std::string> arrays{"A", "B", "Cc"};
  for (const auto& a : arrays)
    sys.decls.declareArray(a, {add(iv("N"), ic(2 * kPad))});
  sys.decls.body = blockS({});
  sys.isVars = {"i"};
  sys.isBounds = {{AffineExpr(kPad), AffineExpr::var("N")}};

  std::size_t nests = 2 + rng.nextBounded(2);
  for (std::size_t k = 0; k < nests; ++k) {
    PerfectNest nest;
    nest.vars = {"i"};
    nest.domain = IntegerSet({"i"});
    nest.domain.addRange("i", AffineExpr(kPad), AffineExpr::var("N"));
    std::vector<StmtPtr> body;
    std::size_t stmts = 1 + rng.nextBounded(2);
    for (std::size_t s = 0; s < stmts; ++s) {
      std::string dst;
      body.push_back(randomStmt(rng, arrays, &dst));
    }
    nest.body = blockS(std::move(body));
    nest.embed = AffineMap{{AffineExpr::var("i")}};
    sys.nests.push_back(std::move(nest));
  }
  int id = 0;
  for (auto& nest : sys.nests)
    ir::forEachStmt(*nest.body, [&](const ir::Stmt& s) {
      if (s.kind() == ir::StmtKind::Assign)
        const_cast<ir::Stmt&>(s).setAssignId(id++);
    });
  out.ok = true;
  return out;
}

/// Deterministic random initialisation of the fuzz arrays for (seed, N).
inline void initFuzzArrays(interp::Machine& m, std::uint64_t seed,
                           std::uint64_t mult, std::int64_t n) {
  SplitMix64 rng(seed * mult + static_cast<std::uint64_t>(n));
  for (const char* name : {"A", "B", "Cc"})
    if (m.hasArray(name))
      for (auto& v : m.array(name).data()) v = rng.nextDouble(-2.0, 2.0);
}

/// A seeded indirect-access (gathered) program: a two-nest sparse chain
/// over one index array, the shape the inspector-executor fuses.
///
///   nest 0:  Y[i] += A[i][k] * X[col[i][k]]        (SpMV-style gather)
///   nest 1:  Z[i] += A[i][k] * Y[col[i][k]] (+ X[i] on odd seeds)
///
/// The program text is the same for every seed with the same (n, k);
/// the *bindings* vary per seed: triangular draws keep col[i][k] <= i
/// (inspector must prove the fusion), non-triangular draws use the full
/// row range (inspector must reject it - fixed-or-rejected-loudly).
/// Either way the program runs on every backend; only fusion legality
/// differs.
struct IndirectProgram {
  ir::Program prog;
  deps::InspectorBindings bindings;
  bool triangular = false;
};

inline IndirectProgram randomIndirectProgram(std::uint64_t seed,
                                             std::int64_t n = 16,
                                             std::int64_t kWidth = 4) {
  using namespace fixfuse::ir;
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ull + 0x5eed);
  IndirectProgram out;
  out.triangular = (seed % 2) == 1;

  Program& p = out.prog;
  p.params = {"N", "K"};
  p.declareArray("A", {iv("N"), iv("K")});
  p.declareIndexArray("col", {iv("N"), iv("K")});
  p.declareArray("X", {iv("N")});
  p.declareArray("Y", {iv("N")});
  p.declareArray("Z", {iv("N")});
  ExprPtr gather = iload("col", {iv("i"), iv("k")});
  StmtPtr produce = aassign(
      "Y", {iv("i")},
      add(load("Y", {iv("i")}),
          mul(load("A", {iv("i"), iv("k")}), load("X", {gather}))));
  ExprPtr consumed = mul(load("A", {iv("i"), iv("k")}), load("Y", {gather}));
  if (seed % 2) consumed = add(consumed, load("X", {iv("i")}));
  StmtPtr consume =
      aassign("Z", {iv("i")}, add(load("Z", {iv("i")}), consumed));
  auto nest = [&](StmtPtr body) {
    return loopS("i", ic(0), sub(iv("N"), ic(1)),
                 {loopS("k", ic(0), sub(iv("K"), ic(1)), {std::move(body)})});
  };
  p.body = blockS({nest(std::move(produce)), nest(std::move(consume))});
  p.numberAssignments();
  ir::validate(p);

  out.bindings.params = {{"N", n}, {"K", kWidth}};
  // Column-major contents: col[i][k] lives at linear index i + k*n.
  std::vector<std::int64_t> col(static_cast<std::size_t>(n * kWidth), 0);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t k = 0; k < kWidth; ++k)
      col[static_cast<std::size_t>(i + k * n)] =
          out.triangular ? rng.nextInt(0, i) : rng.nextInt(0, n - 1);
  // Guarantee at least one forward reference on non-triangular draws so
  // "must reject" is deterministic, not probabilistic.
  if (!out.triangular && n > 1) col[0] = n - 1;
  out.bindings.indexArrays["col"] = std::move(col);
  return out;
}

/// Deterministic random initialisation for an IndirectProgram's machine:
/// index arrays from the bindings, value arrays from the seeded rng.
inline void initIndirectArrays(interp::Machine& m,
                               const deps::InspectorBindings& b,
                               std::uint64_t seed) {
  pipeline::bindIndexArrays(m, b);
  SplitMix64 rng(seed * 131 + 7);
  for (const char* name : {"A", "X", "Y", "Z"})
    if (m.hasArray(name))
      for (auto& v : m.array(name).data()) v = rng.nextDouble(-2.0, 2.0);
}

/// Verification options replaying the historical fuzz comparison: every
/// array randomised per (seed, N), bit-compared at each problem size.
inline pipeline::VerifyOptions fuzzVerify(std::uint64_t seed,
                                          std::uint64_t mult,
                                          std::vector<std::int64_t> sizes) {
  pipeline::VerifyOptions vo;
  vo.enabled = true;
  for (std::int64_t n : sizes) vo.paramSets.push_back({{"N", n}});
  vo.init = [seed, mult](interp::Machine& m,
                         const std::map<std::string, std::int64_t>& params) {
    initFuzzArrays(m, seed, mult, params.at("N"));
  };
  return vo;
}

}  // namespace fixfuse::tests
