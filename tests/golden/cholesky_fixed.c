#include <math.h>

/* floor division and modulus (round toward -inf) */
static long ff_fdiv(long a, long b) {
  long q = a / b, r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}
static long ff_mod(long a, long b) {
  return a - ff_fdiv(a, b) * b;
}
static long ff_min(long a, long b) { return a < b ? a : b; }
static long ff_max(long a, long b) { return a > b ? a : b; }

#define A_AT(d0, d1) A_[((d0) + ((N + 1L)) * (d1))]

void cholesky_fixed(long N, double* A_) {
  for (long k = 1L; k <= (N + -1L); ++k) {
    for (long j = (k + 1L); j <= N; ++j) {
      for (long i = j; i <= N; ++i) {
        if ((((j + (-1L * k)) + -1L) == 0L) && (((i + (-1L * k)) + -1L) == 0L)) {
          A_AT(k, k) = sqrt(A_AT(k, k));
        }
        if (((j + (-1L * k)) + -1L) == 0L) {
          A_AT(i, k) = (A_AT(i, k) / A_AT(k, k));
        }
        A_AT(i, j) = (A_AT(i, j) - (A_AT(i, k) * A_AT(j, k)));
      }
    }
  }
  A_AT(N, N) = sqrt(A_AT(N, N));
  for (long i = (N + 1L); i <= N; ++i) {
    A_AT(i, N) = (A_AT(i, N) / A_AT(N, N));
  }
  for (long j = (N + 1L); j <= N; ++j) {
    for (long i = j; i <= N; ++i) {
      A_AT(i, j) = (A_AT(i, j) - (A_AT(i, N) * A_AT(j, N)));
    }
  }
}
#undef A_AT
