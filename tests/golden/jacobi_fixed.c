#include <math.h>

/* floor division and modulus (round toward -inf) */
static long ff_fdiv(long a, long b) {
  long q = a / b, r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}
static long ff_mod(long a, long b) {
  return a - ff_fdiv(a, b) * b;
}
static long ff_min(long a, long b) { return a < b ? a : b; }
static long ff_max(long a, long b) { return a > b ? a : b; }

#define A_AT(d0, d1) A_[((d0) + ((N + 1L)) * (d1))]
#define H_A_1_AT(d0, d1) H_A_1_[((d0) + ((N + 1L)) * (d1))]

void jacobi_fixed(long M, long N, double* A_, double* H_A_1_) {
  double l = 0;
  for (long t = 0L; t <= M; ++t) {
    for (long i = 2L; i <= (N + -1L); ++i) {
      for (long j = 2L; j <= (N + -1L); ++j) {
        l = (((((((i + -3L) >= 0L) ? H_A_1_AT(j, (i + -1L)) : A_AT(j, (i + -1L))) + (((j + -3L) >= 0L) ? H_A_1_AT((j + -1L), i) : A_AT((j + -1L), i))) + A_AT((j + 1L), i)) + A_AT(j, (i + 1L))) * 0.25);
        if ((((N + (-1L * i)) + -2L) >= 0L) || (((N + (-1L * j)) + -2L) >= 0L)) {
          H_A_1_AT(j, i) = A_AT(j, i);
        }
        A_AT(j, i) = l;
      }
    }
  }
}
#undef A_AT
#undef H_A_1_AT
