#include <math.h>

/* floor division and modulus (round toward -inf) */
static long ff_fdiv(long a, long b) {
  long q = a / b, r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}
static long ff_mod(long a, long b) {
  return a - ff_fdiv(a, b) * b;
}
static long ff_min(long a, long b) { return a < b ? a : b; }
static long ff_max(long a, long b) { return a > b ? a : b; }

#define A_AT(d0, d1) A_[((d0) + ((N + 1L)) * (d1))]

void lu_fixed(long N, double* A_) {
  double temp = 0;
  double d = 0;
  long m = 0;
  for (long k = 1L; k <= (N + -1L); ++k) {
    for (long j = (k + 1L); j <= N; ++j) {
      for (long i = k; i <= N; ++i) {
        if ((((j + (-1L * k)) + -1L) == 0L) && ((i + (-1L * k)) == 0L)) {
          temp = 0.0;
          m = k;
        }
        if (((i + (-1L * k)) == 0L) && (((j + (-1L * k)) + -1L) == 0L)) {
          for (long Pi = k; Pi <= N; ++Pi) {
            d = A_AT(Pi, k);
            if (fabs(d) > temp) {
              temp = fabs(d);
              m = Pi;
            }
          }
        }
        if (((j + (-1L * k)) + -1L) == 0L) {
          if (m != k) {
            temp = A_AT(k, i);
            A_AT(k, i) = A_AT(m, i);
            A_AT(m, i) = temp;
          }
        }
        if ((((i + (-1L * k)) + -1L) >= 0L) && (((j + (-1L * k)) + -1L) == 0L)) {
          A_AT(i, k) = (A_AT(i, k) / A_AT(k, k));
        }
        if (((i + (-1L * k)) + -1L) >= 0L) {
          A_AT(i, j) = (A_AT(i, j) - (A_AT(i, k) * A_AT(k, j)));
        }
      }
    }
  }
  temp = 0.0;
  m = N;
  for (long i = N; i <= N; ++i) {
    d = A_AT(i, N);
    if (fabs(d) > temp) {
      temp = fabs(d);
      m = i;
    }
  }
  if (m != N) {
    for (long j = N; j <= N; ++j) {
      temp = A_AT(N, j);
      A_AT(N, j) = A_AT(m, j);
      A_AT(m, j) = temp;
    }
  }
  for (long i = (N + 1L); i <= N; ++i) {
    A_AT(i, N) = (A_AT(i, N) / A_AT(N, N));
  }
  for (long j = (N + 1L); j <= N; ++j) {
    for (long i = (N + 1L); i <= N; ++i) {
      A_AT(i, j) = (A_AT(i, j) - (A_AT(i, N) * A_AT(N, j)));
    }
  }
}
#undef A_AT
