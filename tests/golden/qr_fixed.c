#include <math.h>

/* floor division and modulus (round toward -inf) */
static long ff_fdiv(long a, long b) {
  long q = a / b, r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}
static long ff_mod(long a, long b) {
  return a - ff_fdiv(a, b) * b;
}
static long ff_min(long a, long b) { return a < b ? a : b; }
static long ff_max(long a, long b) { return a > b ? a : b; }

#define A_AT(d0, d1) A_[((d0) + ((N + 1L)) * (d1))]
#define X_AT(d0, d1) X_[((d0) + ((N + 1L)) * (d1))]

void qr_fixed(long N, double* A_, double* X_) {
  double norm = 0;
  double norm2 = 0;
  double asqr = 0;
  for (long i = 1L; i <= N; ++i) {
    for (long j = i; j <= N; ++j) {
      for (long k = i; k <= N; ++k) {
        if ((((-1L * i) + j) == 0L) && (((-1L * i) + k) == 0L)) {
          norm = 0.0;
        }
        if ((((-1L * i) + k) == 0L) && (((-1L * i) + j) == 0L)) {
          for (long Pk = i; Pk <= N; ++Pk) {
            norm = (norm + (A_AT(Pk, i) * A_AT(Pk, i)));
          }
        }
        if ((((-1L * i) + j) == 0L) && (((-1L * i) + k) == 0L)) {
          norm2 = sqrt(norm);
          asqr = (A_AT(i, i) * A_AT(i, i));
          A_AT(i, i) = sqrt(((norm - asqr) + ((A_AT(i, i) - norm2) * (A_AT(i, i) - norm2))));
        }
        if ((((-1L * i) + j) == 0L) && (((-1L * i) + k) == 0L)) {
          for (long Pj = i; Pj <= N; ++Pj) {
            if (((Pj + (-1L * i)) + -1L) >= 0L) {
              A_AT(Pj, i) = (A_AT(Pj, i) / A_AT(i, i));
            }
          }
        }
        if (((((-1L * i) + j) + -1L) >= 0L) && (((-1L * i) + k) == 0L)) {
          X_AT(j, i) = 0.0;
        }
        if ((((-1L * i) + k) == 0L) && ((((-1L * i) + j) + -1L) >= 0L)) {
          for (long Pk = i; Pk <= N; ++Pk) {
            X_AT(j, i) = (X_AT(j, i) + (A_AT(Pk, i) * A_AT(Pk, j)));
          }
        }
        if (((((-1L * i) + j) + -1L) >= 0L) && ((((-1L * i) + k) + -1L) >= 0L)) {
          A_AT(k, j) = (A_AT(k, j) - (A_AT(k, i) * X_AT(j, i)));
        }
      }
    }
  }
}
#undef A_AT
#undef X_AT
