// The indirect-access IR and the inspector-executor.
//
// Pins the whole sparse path end to end: IdxLoad parse/print/fingerprint
// round-trips and hash-conses like every other node; validate enforces
// the read-only index-array discipline; deps::inspectFusion proves
// fusion legality by materialising the concrete cross-nest dependence
// set from the bound index data (and rejects loudly - structurally or
// per-element - when it cannot); the fused-by-inspector schedule is
// bit-for-bit state-equal to the unfused one on the tree, bytecode and
// native backends; and the engine front door plans gather programs
// through the inspector with the bindings as part of the cache key.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "deps/inspector.h"
#include "engine/engine.h"
#include "fuzz_systems.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "ir/fingerprint.h"
#include "ir/parse.h"
#include "ir/validate.h"
#include "pipeline/pass.h"
#include "planner/planner.h"
#include "support/error.h"
#include "support/rng.h"

namespace fixfuse::deps {
namespace {

// SpMM-SpMM chain in ELL form (two-hop sparse propagation over a
// feature dimension): nest 0 gathers X rows through col into Y, nest 1
// gathers Y rows through the same pattern into Z. Fusable at outer-loop
// granularity exactly when every col[i][k] <= i.
const char* kSpmmChain = R"(
program(N, K, F) {
  double A[N][K];
  long col[N][K];
  double X[N][F];
  double Y[N][F];
  double Z[N][F];
  for i = 0 .. (N - 1) {
    for k = 0 .. (K - 1) {
      for j = 0 .. (F - 1) {
        Y[i][j] = (Y[i][j] + (A[i][k] * X[col[i][k]][j]));
      }
    }
  }
  for i = 0 .. (N - 1) {
    for k = 0 .. (K - 1) {
      for j = 0 .. (F - 1) {
        Z[i][j] = (Z[i][j] + (A[i][k] * Y[col[i][k]][j]));
      }
    }
  }
}
)";

constexpr std::int64_t kN = 24, kK = 4, kF = 3;

std::map<std::string, std::int64_t> spmmParams() {
  return {{"N", kN}, {"K", kK}, {"F", kF}};
}

/// Column-major col contents (linear index i + k*N), lower-triangular
/// (col[i][k] <= i) unless `forwardRow0` plants one forward reference.
InspectorBindings spmmBindings(std::uint64_t seed, bool forwardRow0 = false) {
  InspectorBindings b;
  b.params = spmmParams();
  SplitMix64 rng(seed * 2654435761u + 17);
  std::vector<std::int64_t> col(kN * kK, 0);
  for (std::int64_t i = 0; i < kN; ++i)
    for (std::int64_t k = 0; k < kK; ++k)
      col[static_cast<std::size_t>(i + k * kN)] = rng.nextInt(0, i);
  if (forwardRow0) col[0] = kN - 1;
  b.indexArrays["col"] = std::move(col);
  return b;
}

void initSpmm(interp::Machine& m, const InspectorBindings& b,
              std::uint64_t seed) {
  pipeline::bindIndexArrays(m, b);
  SplitMix64 rng(seed * 97 + 3);
  for (const char* name : {"A", "X", "Y", "Z"})
    for (auto& v : m.array(name).data()) v = rng.nextDouble(-1.5, 1.5);
}

interp::Machine runOn(const ir::Program& p, const InspectorBindings& b,
                      std::uint64_t seed, interp::Backend backend) {
  interp::Machine m(p, spmmParams());
  initSpmm(m, b, seed);
  interp::Interpreter it(p, m, nullptr,
                         interp::Interpreter::Dispatch::Batched, backend);
  it.run();
  return m;
}

TEST(IndirectIR, ParsePrintFingerprintRoundTrip) {
  ir::Program p = ir::parseProgram(kSpmmChain);
  EXPECT_TRUE(hasIndirectAccess(p));
  EXPECT_TRUE(p.array("col").isIndexArray());
  EXPECT_FALSE(p.array("A").isIndexArray());
  // Printed form declares the index array as long and re-parses to the
  // identical hash-consed fingerprint.
  const std::string text = p.str();
  EXPECT_NE(text.find("long col[N][K];"), std::string::npos) << text;
  ir::Program q = ir::parseProgram(text);
  EXPECT_EQ(ir::fingerprint(p), ir::fingerprint(q));
  EXPECT_EQ(p.str(), q.str());
}

TEST(IndirectIR, IdxLoadHashConsesLikeEveryOtherNode) {
  using ir::Expr;
  ir::ExprPtr a = Expr::idxLoad("colT", {ir::iv("i"), ir::iv("k")});
  ir::ExprPtr b = Expr::idxLoad("colT", {ir::iv("i"), ir::iv("k")});
  EXPECT_EQ(a.get(), b.get());  // structural equality is pointer equality
  EXPECT_EQ(a->type(), ir::Type::Int);
  EXPECT_NE(a.get(), Expr::idxLoad("colT", {ir::iv("k"), ir::iv("i")}).get());
  // An ArrayLoad of the same name/indices is a different node: the
  // gather is Int-typed and tagged by kind.
  EXPECT_NE(static_cast<const void*>(a.get()),
            static_cast<const void*>(
                Expr::arrayLoad("colT", {ir::iv("i"), ir::iv("k")}).get()));
  // Index-array element type discriminates the program fingerprint.
  ir::Program p1 = ir::parseProgram("program(N) { double D[N]; }");
  ir::Program p2 = ir::parseProgram("program(N) { long D[N]; }");
  EXPECT_NE(ir::fingerprint(p1), ir::fingerprint(p2));
}

TEST(IndirectIR, ValidateEnforcesReadOnlyIndexArrays) {
  // Store to an index array.
  EXPECT_THROW(ir::parseProgram(R"(
program(N) {
  long idx[N];
  for i = 0 .. (N - 1) { idx[i] = 1.0; }
}
)"),
               Error);
  // Gathering from a double array.
  EXPECT_THROW(ir::parseProgram(R"(
program(N) {
  double D[N];
  double Y[N];
  for i = 0 .. (N - 1) { Y[i] = Y[D[i]]; }
}
)"),
               Error);
  // Rank mismatch on the index array.
  EXPECT_THROW(ir::parseProgram(R"(
program(N) {
  long idx[N][N];
  double Y[N];
  for i = 0 .. (N - 1) { Y[i] = Y[idx[i]]; }
}
)"),
               Error);
}

TEST(Inspector, ProvesTriangularChainFusable) {
  ir::Program p = ir::parseProgram(kSpmmChain);
  InspectionReport rep = inspectFusion(p, spmmBindings(1));
  EXPECT_TRUE(rep.fusable) << rep.reason;
  EXPECT_EQ(rep.nests, 2u);
  EXPECT_EQ(rep.flowArrays, 1u);  // Y
  // One check per (i, k) pair: the feature loop j cannot change the
  // gathered row, so the walker collapses it.
  EXPECT_EQ(rep.readsChecked, static_cast<std::size_t>(kN * kK));
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_NE(rep.reason.find("proved"), std::string::npos);
}

TEST(Inspector, RejectsForwardReferencePerElement) {
  ir::Program p = ir::parseProgram(kSpmmChain);
  InspectionReport rep = inspectFusion(p, spmmBindings(1, /*forwardRow0=*/true));
  EXPECT_FALSE(rep.fusable);
  EXPECT_GE(rep.violations, 1u);
  EXPECT_NE(rep.reason.find("break the fused order"), std::string::npos)
      << rep.reason;
}

TEST(Inspector, RejectsStructurallyUnsuitableShapes) {
  // Different bounds across nests.
  ir::Program diff = ir::parseProgram(R"(
program(N, K) {
  double A[N][K];
  long col[N][K];
  double Y[N];
  double Z[N];
  for i = 0 .. (N - 1) { Y[i] = (Y[i] + A[i][0]); }
  for i = 0 .. (N - 2) { Z[i] = (Z[i] + Y[col[i][0]]); }
}
)");
  InspectionReport rep = inspectFusion(diff, spmmBindings(1));
  EXPECT_FALSE(rep.fusable);
  EXPECT_NE(rep.reason.find("bounds"), std::string::npos) << rep.reason;

  // A flow write that does not target row i.
  ir::Program offRow = ir::parseProgram(R"(
program(N, K) {
  double A[N][K];
  long col[N][K];
  double Y[(N + 1)];
  double Z[N];
  for i = 0 .. (N - 1) { Y[(i + 1)] = A[i][0]; }
  for i = 0 .. (N - 1) { Z[i] = Y[col[i][0]]; }
}
)");
  rep = inspectFusion(offRow, spmmBindings(2));
  EXPECT_FALSE(rep.fusable);
  EXPECT_NE(rep.reason.find("does not target row"), std::string::npos)
      << rep.reason;
}

TEST(Inspector, MalformedBindingsThrow) {
  ir::Program p = ir::parseProgram(kSpmmChain);
  InspectorBindings noCol = spmmBindings(1);
  noCol.indexArrays.clear();
  EXPECT_THROW(inspectFusion(p, noCol), UnsupportedError);

  InspectorBindings shortCol = spmmBindings(1);
  shortCol.indexArrays["col"].pop_back();
  EXPECT_THROW(inspectFusion(p, shortCol), UnsupportedError);

  InspectorBindings noParam = spmmBindings(1);
  noParam.params.erase("F");
  EXPECT_THROW(inspectFusion(p, noParam), UnsupportedError);
}

TEST(Inspector, FusedMatchesUnfusedBitForBitOnAllBackends) {
  ir::Program p = ir::parseProgram(kSpmmChain);
  InspectorBindings b = spmmBindings(3);
  ASSERT_TRUE(inspectFusion(p, b).fusable);
  ir::Program fused = fuseTopLevelNests(p);
  // The fused body is one loop; gathers are intact.
  ASSERT_EQ(fused.body->stmts().size(), 1u);
  EXPECT_TRUE(hasIndirectAccess(fused));
  for (interp::Backend backend :
       {interp::Backend::Tree, interp::Backend::Bytecode,
        interp::Backend::Native}) {
    interp::Machine unfused = runOn(p, b, 3, backend);
    interp::Machine withFusion = runOn(fused, b, 3, backend);
    std::string which;
    EXPECT_TRUE(
        interp::machinesBitwiseEqual(p, unfused, fused, withFusion, &which))
        << "backend " << interp::backendName(backend) << ": array " << which;
  }
}

TEST(Inspector, FingerprintCoversEveryElement) {
  InspectorBindings a = spmmBindings(1);
  InspectorBindings b = spmmBindings(1);
  ir::Fingerprint fa, fb;
  a.appendFingerprint(fa);
  b.appendFingerprint(fb);
  EXPECT_EQ(fa, fb);
  b.indexArrays["col"][kN * kK - 1] ^= 1;  // one element, one bit
  fb.clear();
  b.appendFingerprint(fb);
  EXPECT_NE(fa, fb);
}

TEST(Planner, GatherProgramsRequireInspectorBindings) {
  ir::Program p = ir::parseProgram(kSpmmChain);
  poly::ParamContext ctx;
  ctx.addParam("N", 2, 100000);
  ctx.addParam("K", 1, 1024);
  ctx.addParam("F", 1, 1024);
  try {
    planner::planProgram(p, ctx, {});
    FAIL() << "expected UnsupportedError";
  } catch (const UnsupportedError& e) {
    EXPECT_NE(std::string(e.what()).find("inspector"), std::string::npos);
  }
}

TEST(Planner, InspectorPlanIsLoudOnIllegalData) {
  ir::Program p = ir::parseProgram(kSpmmChain);
  poly::ParamContext ctx;
  ctx.addParam("N", 2, 100000);
  ctx.addParam("K", 1, 1024);
  ctx.addParam("F", 1, 1024);
  planner::PlannerOptions po;
  po.inspector = spmmBindings(1, /*forwardRow0=*/true);
  try {
    planner::planProgram(p, ctx, po);
    FAIL() << "expected UnsupportedError";
  } catch (const UnsupportedError& e) {
    EXPECT_NE(std::string(e.what()).find("inspector rejected"),
              std::string::npos);
  }
}

engine::CompileOptions sparseCompileOptions(const InspectorBindings& b,
                                            std::uint64_t seed) {
  engine::CompileOptions opts;
  opts.planner.inspector = b;
  opts.verify.enabled = true;
  opts.verify.paramSets = {b.params};
  opts.verify.init = [b, seed](interp::Machine& m,
                               const std::map<std::string, std::int64_t>&) {
    initSpmm(m, b, seed);
  };
  return opts;
}

TEST(Engine, SparseChainCompilesThroughInspectorAndCachesOnIndexData) {
  // Bound 32 = 16 shards x capacity 2: the two distinct entries this
  // test creates can never evict each other even when the (per-process)
  // fingerprint hash lands both in one shard. Bound 8 gave one-entry
  // shards and a ~1/8 flake.
  engine::Engine eng(32);
  poly::ParamContext ctx;
  ctx.addParam("N", 2, 100000);
  ctx.addParam("K", 1, 1024);
  ctx.addParam("F", 1, 1024);
  InspectorBindings b = spmmBindings(5);
  engine::CompiledProgram cp =
      eng.compileText(kSpmmChain, ctx, sparseCompileOptions(b, 5));
  EXPECT_FALSE(cp.cacheHit());
  EXPECT_EQ(cp.plan().strategy, "inspector");
  EXPECT_TRUE(cp.plan().inspectorFused);
  EXPECT_EQ(cp.plan().tile.kind, planner::TilePlan::Kind::None);
  // Gather subscripts are non-affine: the parallel layer must stay
  // Serial (the safe direction), never an unproven parallel schedule.
  EXPECT_EQ(cp.plan().tile.parallel.kind,
            codegen::ParallelPlan::Kind::Serial);
  EXPECT_FALSE(cp.plan().tile.parallel.reason.empty());
  EXPECT_NE(cp.planSignature().find("inspector"), std::string::npos);
  EXPECT_NE(cp.planSignature().find("inspected="), std::string::npos);
  // fused == fixed == tiled: the inspector pipeline is one fusion.
  EXPECT_EQ(cp.fused().str(), cp.fixed().str());
  EXPECT_EQ(cp.fixed().str(), cp.tiled().str());
  EXPECT_EQ(cp.tiled().body->stmts().size(), 1u);

  // The cached artifact executes: engine-run fused state equals a
  // direct unfused interpretation, bit for bit.
  ir::Program p = ir::parseProgram(kSpmmChain);
  interp::Machine viaEngine = cp.run(
      b.params, [&](interp::Machine& m) { initSpmm(m, b, 5); },
      interp::Backend::Bytecode);
  interp::Machine unfused = runOn(p, b, 5, interp::Backend::Bytecode);
  std::string which;
  EXPECT_TRUE(interp::machinesBitwiseEqual(cp.tiled(), viaEngine, p, unfused,
                                           &which))
      << which;

  // Same program + same bindings: cache hit.
  EXPECT_TRUE(
      eng.compileText(kSpmmChain, ctx, sparseCompileOptions(b, 5)).cacheHit());
  // Same program, different index data (still triangular): the legality
  // proof is per-element, so this must be a distinct entry.
  InspectorBindings b2 = spmmBindings(6);
  ASSERT_NE(b.indexArrays["col"], b2.indexArrays["col"]);
  engine::CompiledProgram cp2 =
      eng.compileText(kSpmmChain, ctx, sparseCompileOptions(b2, 6));
  EXPECT_FALSE(cp2.cacheHit());
  EXPECT_EQ(eng.cacheSize(), 2u);
}

TEST(Engine, SparseFuzzIsFusedOrRejectedLoudly) {
  poly::ParamContext ctx;
  ctx.addParam("N", 2, 100000);
  ctx.addParam("K", 1, 1024);
  engine::Engine eng(32);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    tests::IndirectProgram ip = tests::randomIndirectProgram(seed);
    engine::CompileOptions opts;
    opts.planner.inspector = ip.bindings;
    opts.verify.enabled = true;
    opts.verify.paramSets = {ip.bindings.params};
    opts.verify.init = [&ip, seed](interp::Machine& m,
                                   const std::map<std::string, std::int64_t>&) {
      tests::initIndirectArrays(m, ip.bindings, seed);
    };
    if (ip.triangular) {
      engine::CompiledProgram cp = eng.compile(ip.prog, ctx, opts);
      EXPECT_EQ(cp.plan().strategy, "inspector") << "seed " << seed;
      // Verified fused execution equals the unfused schedule.
      interp::Machine fusedM = cp.run(
          ip.bindings.params,
          [&](interp::Machine& m) { tests::initIndirectArrays(m, ip.bindings, seed); });
      interp::Machine seqM(ip.prog, ip.bindings.params);
      tests::initIndirectArrays(seqM, ip.bindings, seed);
      interp::Interpreter it(ip.prog, seqM, nullptr,
                             interp::Interpreter::Dispatch::Batched,
                             interp::Backend::Bytecode);
      it.run();
      std::string which;
      EXPECT_TRUE(interp::machinesBitwiseEqual(cp.tiled(), fusedM, ip.prog,
                                               seqM, &which))
          << "seed " << seed << ": " << which;
    } else {
      EXPECT_THROW(eng.compile(ip.prog, ctx, opts), UnsupportedError)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace fixfuse::deps
