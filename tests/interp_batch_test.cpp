// Differential tests for the batched observer fast path: the interpreter
// must deliver the *same events in the same order* whether it calls the
// per-event virtuals directly (Dispatch::PerEvent) or appends to the
// ring and flushes chunks through onBatch (Dispatch::Batched, the
// default). Bit-for-bit event equivalence is the contract that makes
// every downstream simulator result (cache misses, branch outcomes,
// instruction counts) independent of the delivery mode.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "interp/event.h"
#include "interp/interp.h"
#include "interp/observer.h"
#include "kernels/common.h"
#include "kernels/native.h"
#include "sim/perf.h"

namespace fixfuse {
namespace {

using Dispatch = interp::Interpreter::Dispatch;

struct RunSetup {
  std::map<std::string, std::int64_t> params;
  std::map<std::string, kernels::native::Matrix> init;
};

RunSetup setupFor(const std::string& kernel, std::int64_t n) {
  RunSetup s;
  s.params["N"] = n;
  if (kernel == "jacobi") s.params["M"] = 3;
  s.init["A"] = kernel == "cholesky"
                    ? kernels::native::spdMatrix(n, 7)
                    : kernels::native::randomMatrix(n, 7, 0.5, 1.5);
  return s;
}

void runWith(const ir::Program& p, const RunSetup& s, interp::Observer* obs,
             Dispatch d,
             interp::Backend backend = interp::backendFromEnv()) {
  interp::Machine m(p, s.params);
  for (const auto& [name, mat] : s.init)
    if (m.hasArray(name)) m.array(name).data() = mat;
  interp::Interpreter it(p, m, obs, d, backend);
  it.run();
}

std::vector<interp::Event> traceOf(
    const ir::Program& p, const RunSetup& s, Dispatch d,
    interp::Backend backend = interp::backendFromEnv()) {
  interp::TraceRecorder rec;
  runWith(p, s, &rec, d, backend);
  return std::move(rec.events);
}

const std::vector<std::string>& kernelNames() {
  static const std::vector<std::string> names{"lu", "cholesky", "qr",
                                              "jacobi"};
  return names;
}

// The core contract: identical event sequence from both dispatch modes,
// for every kernel, every program variant in the bundle, and *both*
// execution backends (the bytecode engine keeps the same batched/
// per-event equivalence the tree walker guarantees).
TEST(InterpBatch, EventSequencesIdenticalAcrossDispatchModes) {
  for (const std::string& kernel : kernelNames()) {
    kernels::KernelBundle b = kernels::buildKernel(kernel, {/*tile=*/4});
    // N=16 keeps the run fast but pushes every variant's trace past the
    // 4096-event ring capacity, so intermediate flushes are exercised.
    RunSetup s = setupFor(kernel, 16);
    for (const ir::Program* p :
         {&b.seq, &b.fused, &b.fixed, &b.tiledBaseline, &b.tiled}) {
      for (interp::Backend be :
           {interp::Backend::Tree, interp::Backend::Bytecode}) {
        std::vector<interp::Event> perEvent =
            traceOf(*p, s, Dispatch::PerEvent, be);
        std::vector<interp::Event> batched =
            traceOf(*p, s, Dispatch::Batched, be);
        ASSERT_EQ(perEvent.size(), batched.size())
            << kernel << " " << interp::backendName(be);
        ASSERT_TRUE(perEvent == batched)
            << kernel << " " << interp::backendName(be);
        // The ring flushes at 4096 events; make sure the trace actually
        // exercises at least one intermediate flush plus the final
        // partial one, or this test proves nothing about chunk
        // boundaries.
        EXPECT_GT(perEvent.size(), std::size_t{4096}) << kernel;
      }
    }
  }
}

TEST(InterpBatch, CountingTotalsIdenticalAcrossDispatchModes) {
  for (const std::string& kernel : kernelNames()) {
    kernels::KernelBundle b = kernels::buildKernel(kernel, {/*tile=*/4});
    RunSetup s = setupFor(kernel, 8);
    interp::CountingObserver pe, ba;
    runWith(b.fixed, s, &pe, Dispatch::PerEvent);
    runWith(b.fixed, s, &ba, Dispatch::Batched);
    EXPECT_EQ(pe.loads, ba.loads) << kernel;
    EXPECT_EQ(pe.stores, ba.stores) << kernel;
    EXPECT_EQ(pe.branches, ba.branches) << kernel;
    EXPECT_EQ(pe.intOps, ba.intOps) << kernel;
    EXPECT_EQ(pe.flops, ba.flops) << kernel;
  }
}

TEST(InterpBatch, SimulatorCountsIdenticalAcrossDispatchModes) {
  for (const std::string& kernel : kernelNames()) {
    kernels::KernelBundle b = kernels::buildKernel(kernel, {/*tile=*/4});
    RunSetup s = setupFor(kernel, 8);
    sim::SimObserver pe, ba;
    runWith(b.tiled, s, &pe, Dispatch::PerEvent);
    runWith(b.tiled, s, &ba, Dispatch::Batched);
    sim::PerfCounts a = pe.counts();
    sim::PerfCounts c = ba.counts();
    EXPECT_EQ(a.loads, c.loads) << kernel;
    EXPECT_EQ(a.stores, c.stores) << kernel;
    EXPECT_EQ(a.intOps, c.intOps) << kernel;
    EXPECT_EQ(a.flops, c.flops) << kernel;
    EXPECT_EQ(a.branchesResolved, c.branchesResolved) << kernel;
    EXPECT_EQ(a.branchesMispredicted, c.branchesMispredicted) << kernel;
    EXPECT_EQ(a.l1Misses, c.l1Misses) << kernel;
    EXPECT_EQ(a.l2Misses, c.l2Misses) << kernel;
    EXPECT_EQ(a.l1Accesses, c.l1Accesses) << kernel;
    EXPECT_EQ(a.l2Accesses, c.l2Accesses) << kernel;
  }
}

// An observer that overrides only the per-event hooks must keep working
// under the batched interpreter via the default onBatch shim.
struct LegacyOnlyObserver : interp::Observer {
  std::uint64_t loads = 0, stores = 0, branches = 0, intOps = 0, flops = 0;
  void onLoad(std::uint64_t) override { ++loads; }
  void onStore(std::uint64_t) override { ++stores; }
  void onBranch(int, bool) override { ++branches; }
  void onIntOps(std::uint64_t n) override { intOps += n; }
  void onFlops(std::uint64_t n) override { flops += n; }
};

TEST(InterpBatch, DefaultOnBatchShimReplaysPerEvent) {
  kernels::KernelBundle b = kernels::buildKernel("cholesky", {/*tile=*/4});
  RunSetup s = setupFor("cholesky", 8);
  LegacyOnlyObserver pe, ba;
  runWith(b.fixed, s, &pe, Dispatch::PerEvent);
  runWith(b.fixed, s, &ba, Dispatch::Batched);
  EXPECT_EQ(pe.loads, ba.loads);
  EXPECT_EQ(pe.stores, ba.stores);
  EXPECT_EQ(pe.branches, ba.branches);
  EXPECT_EQ(pe.intOps, ba.intOps);
  EXPECT_EQ(pe.flops, ba.flops);
  EXPECT_GT(ba.loads, 0u);
}

// Replay helpers: any chunking of the same trace yields the same totals,
// including degenerate chunk sizes.
TEST(InterpBatch, ReplayChunkingInvariant) {
  kernels::KernelBundle b = kernels::buildKernel("lu", {/*tile=*/0});
  RunSetup s = setupFor("lu", 6);
  std::vector<interp::Event> trace = traceOf(b.seq, s, Dispatch::Batched);
  ASSERT_FALSE(trace.empty());

  interp::CountingObserver ref;
  interp::replayPerEvent(ref, trace.data(), trace.size());
  for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{4096}, trace.size() + 100}) {
    interp::CountingObserver o;
    interp::replayBatched(o, trace.data(), trace.size(), chunk);
    EXPECT_EQ(ref.loads, o.loads) << chunk;
    EXPECT_EQ(ref.stores, o.stores) << chunk;
    EXPECT_EQ(ref.branches, o.branches) << chunk;
    EXPECT_EQ(ref.intOps, o.intOps) << chunk;
    EXPECT_EQ(ref.flops, o.flops) << chunk;
  }
}

// TraceRecorder sees the same events regardless of how they arrive.
TEST(InterpBatch, RecorderAgnosticToDeliveryMode) {
  kernels::KernelBundle b = kernels::buildKernel("jacobi", {/*tile=*/4});
  RunSetup s = setupFor("jacobi", 8);
  std::vector<interp::Event> direct = traceOf(b.fixed, s, Dispatch::PerEvent);
  interp::TraceRecorder viaBatch;
  interp::replayBatched(viaBatch, direct.data(), direct.size(), 1000);
  ASSERT_TRUE(viaBatch.events == direct);
}

TEST(InterpBatch, EventRecordLayout) {
  static_assert(sizeof(interp::Event) == 16);
  interp::Event e = interp::Event::branch(42, true);
  EXPECT_EQ(e.kind, interp::EventKind::Branch);
  EXPECT_EQ(e.value, 42u);
  EXPECT_EQ(e.flag, 1);
  EXPECT_TRUE(e == interp::Event::branch(42, true));
  EXPECT_FALSE(e == interp::Event::branch(42, false));
  EXPECT_FALSE(e == interp::Event::load(42));
}

}  // namespace
}  // namespace fixfuse
