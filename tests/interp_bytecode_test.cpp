// Differential tests for the bytecode execution backend: it must be
// bit-for-bit *state*-identical and *event-stream* identical to the tree
// walker - same machine state after the run, same Event records in the
// same order (including lazily numbered branch-site ids), through both
// per-event and batched dispatch. The programs come from the FixDeps
// fuzz generator (random dependence patterns, shifted subscripts) and
// from every variant of the four paper kernels (seq / fused / fixed /
// tiledBaseline / tiled), which together exercise guards, min/max and
// floor-div/mod tile bounds, data-dependent int-scalar subscripts (LU
// pivoting) and Select reads (ElimRW).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/fuse.h"
#include "fuzz_systems.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "kernels/common.h"
#include "kernels/native.h"
#include "support/error.h"

namespace fixfuse::interp {
namespace {

using Dispatch = Interpreter::Dispatch;

void expectSameState(const ir::Program& p, const Machine& tree,
                     const Machine& bc, const std::string& label) {
  std::string which;
  EXPECT_TRUE(machinesBitwiseEqual(p, tree, p, bc, &which))
      << label << ": array " << which << " differs";
  // Scalars too, bitwise (QR legitimately produces NaN).
  for (const auto& [name, v] : tree.floatScalars())
    EXPECT_TRUE(bitsEqual(&v, &bc.floatScalars().at(name), 1))
        << label << ": float scalar " << name;
  for (const auto& [name, v] : tree.intScalars())
    EXPECT_EQ(v, bc.intScalars().at(name)) << label << ": int scalar " << name;
}

/// Run `p` under `backend` with a trace recorder; returns final machine
/// state through `mOut` and the full event trace.
std::vector<Event> traceRun(const ir::Program& p,
                            const std::map<std::string, std::int64_t>& params,
                            const std::function<void(Machine&)>& init,
                            Dispatch d, Backend backend, Machine* mOut) {
  Machine m(p, params);
  if (init) init(m);
  TraceRecorder rec;
  Interpreter it(p, m, &rec, d, backend);
  it.run();
  if (mOut) *mOut = std::move(m);
  return std::move(rec.events);
}

void expectBackendsEquivalent(const ir::Program& p,
                              const std::map<std::string, std::int64_t>& params,
                              const std::function<void(Machine&)>& init,
                              const std::string& label) {
  for (Dispatch d : {Dispatch::PerEvent, Dispatch::Batched}) {
    Machine mTree(p, params), mBc(p, params);
    std::vector<Event> tTree =
        traceRun(p, params, init, d, Backend::Tree, &mTree);
    std::vector<Event> tBc =
        traceRun(p, params, init, d, Backend::Bytecode, &mBc);
    const char* dn = d == Dispatch::Batched ? "batched" : "per-event";
    ASSERT_EQ(tTree.size(), tBc.size()) << label << " (" << dn << ")";
    ASSERT_TRUE(tTree == tBc) << label << " (" << dn << "): traces differ";
    expectSameState(p, mTree, mBc, label + " (" + dn + ")");
  }
  // No-observer runs must land in the same state too (the bytecode
  // NoEmit instantiation compiles all event plumbing away).
  Machine a = runProgram(p, params, init, nullptr);
  Machine mBc(p, params);
  if (init) init(mBc);
  Interpreter it(p, mBc, nullptr, Dispatch::Batched, Backend::Bytecode);
  it.run();
  expectSameState(p, a, mBc, label + " (no observer)");
}

TEST(InterpBytecode, FuzzProgramsSequentialAndFused) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    tests::FuzzSystem fz = tests::randomSystem(seed);
    ir::Program seq = core::generateSequentialProgram(fz.sys);
    ir::Program fused = core::generateFusedProgram(fz.sys);
    auto init = [seed](Machine& m) {
      tests::initFuzzArrays(m, seed, 77, 16);
    };
    std::map<std::string, std::int64_t> params{{"N", 16}};
    expectBackendsEquivalent(seq, params, init,
                             "fuzz seq seed=" + std::to_string(seed));
    expectBackendsEquivalent(fused, params, init,
                             "fuzz fused seed=" + std::to_string(seed));
  }
}

TEST(InterpBytecode, IndirectGatherProgramsBothDispatchModes) {
  // Gathered (IdxLoad) subscripts must be bit-for-bit state- AND
  // event-equivalent across tree and bytecode, like every other node -
  // both for the two-nest sparse chain and, on triangular draws, for
  // the inspector-fused single nest.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    tests::IndirectProgram ip = tests::randomIndirectProgram(seed);
    auto init = [&ip, seed](Machine& m) {
      tests::initIndirectArrays(m, ip.bindings, seed);
    };
    expectBackendsEquivalent(ip.prog, ip.bindings.params, init,
                             "indirect seed=" + std::to_string(seed));
    if (ip.triangular)
      expectBackendsEquivalent(deps::fuseTopLevelNests(ip.prog),
                               ip.bindings.params, init,
                               "indirect fused seed=" + std::to_string(seed));
  }
}

TEST(InterpBytecode, AllKernelVariantsAllBackendsAllDispatchModes) {
  for (const char* kernel : {"lu", "cholesky", "qr", "jacobi"}) {
    kernels::KernelBundle b = kernels::buildKernel(kernel, {/*tile=*/4});
    std::map<std::string, std::int64_t> params{{"N", 12}};
    if (std::string(kernel) == "jacobi") params["M"] = 3;
    kernels::native::Matrix a0 = std::string(kernel) == "cholesky"
                                     ? kernels::native::spdMatrix(12, 7)
                                     : kernels::native::randomMatrix(12, 7,
                                                                     0.5, 1.5);
    auto init = [&a0](Machine& m) {
      if (m.hasArray("A")) m.array("A").data() = a0;
    };
    const char* names[] = {"seq", "fused", "fixed", "tiledBaseline", "tiled"};
    const ir::Program* variants[] = {&b.seq, &b.fused, &b.fixed,
                                     &b.tiledBaseline, &b.tiled};
    for (int i = 0; i < 5; ++i)
      expectBackendsEquivalent(*variants[i], params, init,
                               std::string(kernel) + "/" + names[i]);
  }
}

TEST(InterpBytecode, TraceExceedsRingSoFlushesAreExercised) {
  // At N=16 every kernel trace passes the 4096-event ring capacity, so
  // the batched comparison above really covers chunk boundaries; keep a
  // direct guard here too.
  kernels::KernelBundle b = kernels::buildKernel("cholesky", {/*tile=*/4});
  std::map<std::string, std::int64_t> params{{"N", 16}};
  kernels::native::Matrix a0 = kernels::native::spdMatrix(16, 7);
  auto init = [&a0](Machine& m) { m.array("A").data() = a0; };
  std::vector<Event> t = traceRun(b.fixed, params, init, Dispatch::Batched,
                                  Backend::Bytecode, nullptr);
  EXPECT_GT(t.size(), std::size_t{4096});
}

TEST(InterpBytecode, RepeatRunsKeepSiteNumbering) {
  // The tree walker's siteOf() cache persists across run() calls on one
  // interpreter; the bytecode SiteState must too.
  using namespace fixfuse::ir;
  Program p;
  p.declareArray("A", {ic(8)});
  p.body = blockS({loopS("i", ic(1), ic(4),
                         {ifs(ltE(iv("i"), ic(3)),
                              {aassign("A", {iv("i")}, fc(1.0))})})});
  for (Backend be : {Backend::Tree, Backend::Bytecode}) {
    Machine m(p, {});
    TraceRecorder rec;
    Interpreter it(p, m, &rec, Dispatch::PerEvent, be);
    it.run();
    std::vector<Event> first = std::move(rec.events);
    rec.events.clear();
    it.run();
    ASSERT_TRUE(rec.events == first) << backendName(be);
  }
}

TEST(InterpBytecode, OutOfBoundsThrowsInBothBackends) {
  using namespace fixfuse::ir;
  Program p;
  p.declareArray("A", {ic(4)});
  p.body = blockS({loopS("i", ic(1), ic(6),
                         {aassign("A", {iv("i")}, fc(1.0))})});
  for (Backend be : {Backend::Tree, Backend::Bytecode}) {
    Machine m(p, {});
    Interpreter it(p, m, nullptr, Dispatch::Batched, be);
    EXPECT_THROW(it.run(), fixfuse::InternalError) << backendName(be);
  }
}

TEST(InterpBytecode, FloorDivByZeroThrowsInBothBackends) {
  using namespace fixfuse::ir;
  Program p;
  p.declareScalar("q", ir::Type::Int);
  p.declareScalar("z", ir::Type::Int);
  p.body = blockS({sassign("z", ic(0)),
                   sassign("q", floordiv(ic(7), sloadi("z")))});
  for (Backend be : {Backend::Tree, Backend::Bytecode}) {
    Machine m(p, {});
    Interpreter it(p, m, nullptr, Dispatch::Batched, be);
    EXPECT_THROW(it.run(), fixfuse::InternalError) << backendName(be);
  }
}

TEST(InterpBytecode, ParseBackendName) {
  EXPECT_EQ(parseBackendName("tree"), Backend::Tree);
  EXPECT_EQ(parseBackendName("bytecode"), Backend::Bytecode);
  EXPECT_EQ(parseBackendName("TREE"), Backend::Tree);
  EXPECT_EQ(parseBackendName("ByteCode"), Backend::Bytecode);
  EXPECT_EQ(parseBackendName(""), std::nullopt);
  EXPECT_EQ(parseBackendName("ast"), std::nullopt);
  EXPECT_EQ(parseBackendName("bytecode "), std::nullopt);
}

TEST(InterpBytecode, BackendFromEnvFallsBackOnUnrecognizedValue) {
  // Mirrors FIXFUSE_FULL / FIXFUSE_THREADS handling: warn (once) and use
  // the default rather than aborting a long bench run over a typo.
  const char* old = std::getenv("FIXFUSE_INTERP");
  std::string saved = old ? old : "";
  setenv("FIXFUSE_INTERP", "tree", 1);
  EXPECT_EQ(backendFromEnv(), Backend::Tree);
  setenv("FIXFUSE_INTERP", "bytecode", 1);
  EXPECT_EQ(backendFromEnv(), Backend::Bytecode);
  setenv("FIXFUSE_INTERP", "turbo", 1);
  EXPECT_EQ(backendFromEnv(), Backend::Bytecode);
  unsetenv("FIXFUSE_INTERP");
  EXPECT_EQ(backendFromEnv(), Backend::Bytecode);
  if (old) setenv("FIXFUSE_INTERP", saved.c_str(), 1);
}

TEST(InterpBytecode, BackendNames) {
  EXPECT_STREQ(backendName(Backend::Tree), "tree");
  EXPECT_STREQ(backendName(Backend::Bytecode), "bytecode");
}

}  // namespace
}  // namespace fixfuse::interp
