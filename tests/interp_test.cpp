// Tests for the reference interpreter: arithmetic semantics, loop/guard
// control flow, machine layout, observer event counts, and a hand-checked
// mini-kernel (sum / triangular update).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "interp/compare.h"
#include "interp/interp.h"
#include "ir/stmt.h"
#include "support/error.h"

namespace fixfuse::interp {
namespace {

using namespace fixfuse::ir;

Program sumProgram() {
  // s[0] = 0; do i = 1, N: s[0] += B[i]
  Program p;
  p.params = {"N"};
  p.declareArray("B", {add(iv("N"), ic(1))});
  p.declareArray("S", {ic(1)});
  p.body = blockS({aassign("S", {ic(0)}, fc(0.0)),
                   loopS("i", ic(1), iv("N"),
                         {aassign("S", {ic(0)},
                                  add(load("S", {ic(0)}),
                                      load("B", {iv("i")})))})});
  return p;
}

TEST(Machine, AllocatesEvaluatedExtents) {
  Program p = sumProgram();
  Machine m(p, {{"N", 10}});
  EXPECT_EQ(m.array("B").elementCount(), 11u);
  EXPECT_EQ(m.array("S").elementCount(), 1u);
}

TEST(Machine, MissingParameterThrows) {
  Program p = sumProgram();
  EXPECT_THROW(Machine(p, {}), fixfuse::InternalError);
}

TEST(Machine, ArraysDoNotOverlapAndAreAligned) {
  Program p = sumProgram();
  Machine m(p, {{"N", 100}});
  const auto& b = m.array("B");
  const auto& s = m.array("S");
  EXPECT_EQ(b.base() % 64, 0u);
  EXPECT_EQ(s.base() % 64, 0u);
  // No overlap in either order.
  bool disjoint = (b.base() + b.byteSize() <= s.base()) ||
                  (s.base() + s.byteSize() <= b.base());
  EXPECT_TRUE(disjoint);
}

TEST(Machine, ColumnMajorAddressing) {
  // Fortran order: the FIRST index is contiguous (see machine.cpp).
  Program p;
  p.params = {};
  p.declareArray("A", {ic(3), ic(4)});
  Machine m(p, {});
  const auto& a = m.array("A");
  std::vector<std::int64_t> i00{0, 0}, i01{0, 1}, i10{1, 0};
  EXPECT_EQ(a.addrOf(i10) - a.addrOf(i00), 8u);
  EXPECT_EQ(a.addrOf(i01) - a.addrOf(i00), 24u);  // 3 elements per column
}

TEST(Machine, OutOfBoundsThrows) {
  Program p;
  p.declareArray("A", {ic(3)});
  Machine m(p, {});
  std::vector<std::int64_t> bad{3};
  EXPECT_THROW(m.array("A").get(bad), fixfuse::InternalError);
  std::vector<std::int64_t> neg{-1};
  EXPECT_THROW(m.array("A").get(neg), fixfuse::InternalError);
}

TEST(Interp, SumLoop) {
  Program p = sumProgram();
  Machine m = runProgram(p, {{"N", 5}}, [](Machine& mm) {
    for (int i = 1; i <= 5; ++i) {
      std::vector<std::int64_t> idx{i};
      mm.array("B").set(idx, static_cast<double>(i));
    }
  });
  std::vector<std::int64_t> z{0};
  EXPECT_DOUBLE_EQ(m.array("S").get(z), 15.0);
}

TEST(Interp, ZeroTripLoopBody) {
  Program p = sumProgram();
  Machine m = runProgram(p, {{"N", 0}}, nullptr);
  std::vector<std::int64_t> z{0};
  EXPECT_DOUBLE_EQ(m.array("S").get(z), 0.0);
}

TEST(Interp, FloorDivModSemantics) {
  // A[0] set via: m1 = fdiv(-7, 2) -> -4 ; m2 = mod(-7, 2) -> 1.
  Program p;
  p.declareArray("A", {ic(2)});
  p.declareScalar("q", Type::Int);
  p.declareScalar("r", Type::Int);
  p.body = blockS({sassign("q", floordiv(ic(-7), ic(2))),
                   sassign("r", mod(ic(-7), ic(2)))});
  Machine m = runProgram(p, {}, nullptr);
  EXPECT_EQ(m.intScalar("q"), -4);
  EXPECT_EQ(m.intScalar("r"), 1);
}

TEST(Interp, MinMax) {
  Program p;
  p.declareScalar("a", Type::Int);
  p.declareScalar("b", Type::Int);
  p.body = blockS({sassign("a", imin(ic(3), ic(-2))),
                   sassign("b", imax(ic(3), ic(-2)))});
  Machine m = runProgram(p, {}, nullptr);
  EXPECT_EQ(m.intScalar("a"), -2);
  EXPECT_EQ(m.intScalar("b"), 3);
}

TEST(Interp, SqrtFabsCalls) {
  Program p;
  p.declareScalar("x", Type::Float);
  p.declareScalar("y", Type::Float);
  p.body = blockS({sassign("x", sqrtE(fc(9.0))), sassign("y", fabsE(fc(-2.5)))});
  Machine m = runProgram(p, {}, nullptr);
  EXPECT_DOUBLE_EQ(m.floatScalar("x"), 3.0);
  EXPECT_DOUBLE_EQ(m.floatScalar("y"), 2.5);
}

TEST(Interp, GuardsAndElse) {
  // do i=1,4 : if i == 2 then A[i] = 1 else A[i] = 2
  Program p;
  p.declareArray("A", {ic(5)});
  p.body = blockS({loopS("i", ic(1), ic(4),
                         {ifelse(eqE(iv("i"), ic(2)),
                                 {aassign("A", {iv("i")}, fc(1.0))},
                                 {aassign("A", {iv("i")}, fc(2.0))})})});
  Machine m = runProgram(p, {}, nullptr);
  std::vector<double> expect{0, 2, 1, 2, 2};
  for (int i = 0; i < 5; ++i) {
    std::vector<std::int64_t> idx{i};
    EXPECT_DOUBLE_EQ(m.array("A").get(idx), expect[static_cast<std::size_t>(i)]);
  }
}

TEST(Interp, DataDependentGuard) {
  // LU-style pivot search: m = index of max |B[i]|.
  Program p;
  p.params = {"N"};
  p.declareArray("B", {add(iv("N"), ic(1))});
  p.declareScalar("temp", Type::Float);
  p.declareScalar("m", Type::Int);
  p.declareScalar("d", Type::Float);
  p.body = blockS(
      {sassign("temp", fc(0.0)), sassign("m", ic(1)),
       loopS("i", ic(1), iv("N"),
             {sassign("d", load("B", {iv("i")})),
              ifs(gtE(fabsE(sloadf("d")), sloadf("temp")),
                  {sassign("temp", fabsE(sloadf("d"))),
                   sassign("m", iv("i"))})})});
  Machine m = runProgram(p, {{"N", 5}}, [](Machine& mm) {
    double vals[] = {0, 1.0, -7.0, 3.0, 6.9, 2.0};
    for (int i = 1; i <= 5; ++i) {
      std::vector<std::int64_t> idx{i};
      mm.array("B").set(idx, vals[i]);
    }
  });
  EXPECT_EQ(m.intScalar("m"), 2);
  EXPECT_DOUBLE_EQ(m.floatScalar("temp"), 7.0);
}

TEST(Interp, NestedLoopsTriangular) {
  // A[i][j] = i*10 + j over j <= i, 1..3
  Program p;
  p.declareArray("A", {ic(4), ic(4)});
  p.body = blockS({loopS(
      "i", ic(1), ic(3),
      {loopS("j", ic(1), iv("i"),
             {aassign("A", {iv("i"), iv("j")},
                      // use float constant arithmetic via int-to-float trick:
                      // store loop-dependent value by repeated adds is
                      // overkill; just store 1.0 and count writes below.
                      fc(1.0))})})});
  CountingObserver obs;
  Machine m(p, {});
  Interpreter interp(p, m, &obs);
  interp.run();
  EXPECT_EQ(obs.stores, 6u);  // 1 + 2 + 3
}

TEST(Interp, ObserverCountsForSum) {
  Program p = sumProgram();
  CountingObserver obs;
  Machine m(p, {{"N", 4}});
  Interpreter interp(p, m, &obs);
  interp.run();
  // Stores: 1 init + 4 accumulate. Loads: per iteration S and B = 8.
  EXPECT_EQ(obs.stores, 5u);
  EXPECT_EQ(obs.loads, 8u);
  EXPECT_EQ(obs.flops, 4u);  // one add per iteration
  // Loop: 4 taken + 1 exit branch.
  EXPECT_EQ(obs.branches, 5u);
}

TEST(Interp, BranchSitesAreStable) {
  Program p;
  p.declareArray("A", {ic(4)});
  p.body = blockS({loopS("i", ic(1), ic(3),
                         {ifs(eqE(iv("i"), ic(2)),
                              {aassign("A", {iv("i")}, fc(1.0))})})});
  struct SiteObserver : Observer {
    std::map<int, int> counts;
    void onBranch(int site, bool) override { ++counts[site]; }
  } obs;
  Machine m(p, {});
  Interpreter interp(p, m, &obs);
  interp.run();
  // Two sites: the loop (3 taken + 1 exit = 4) and the if (3).
  ASSERT_EQ(obs.counts.size(), 2u);
  std::vector<int> v;
  for (auto& [site, n] : obs.counts) v.push_back(n);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{3, 4}));
}

TEST(Interp, RunProgramComparesStates) {
  Program p = sumProgram();
  auto init = [](Machine& mm) {
    for (int i = 1; i <= 5; ++i) {
      std::vector<std::int64_t> idx{i};
      mm.array("B").set(idx, 1.5 * i);
    }
  };
  Machine a = runProgram(p, {{"N", 5}}, init);
  Machine b = runProgram(p, {{"N", 5}}, init);
  EXPECT_TRUE(arraysBitwiseEqual(a, b, "S"));
  std::string which;
  EXPECT_TRUE(statesMatch(p, a, p, b, 0.0, &which));
}

TEST(Interp, MaxArrayDifferenceIsNaNSound) {
  // Regression: fabs(NaN - x) is NaN and std::max(acc, NaN) returns acc,
  // so a NaN on one side used to vanish from the maximum and a genuinely
  // divergent pair of states compared "equal within tolerance".
  Program p;
  p.declareArray("A", {ic(3)});
  Machine a(p, {}), b(p, {});
  const double qnan = std::numeric_limits<double>::quiet_NaN();

  // One-sided NaN: unbounded difference, not zero.
  a.array("A").data() = {qnan, 1.0, 2.0};
  b.array("A").data() = {0.0, 1.0, 2.0};
  EXPECT_EQ(maxArrayDifference(a, b, "A"),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(maxArrayDifference(b, a, "A"),
            std::numeric_limits<double>::infinity());
  std::string which;
  EXPECT_FALSE(statesMatch(p, a, p, b, 1e10, &which));
  EXPECT_EQ(which, "A");

  // Bitwise-identical NaNs are the same value (QR produces them
  // legitimately): they must not poison the difference.
  b.array("A").data() = {qnan, 1.0, 2.5};
  EXPECT_DOUBLE_EQ(maxArrayDifference(a, b, "A"), 0.5);
  EXPECT_TRUE(statesMatch(p, a, p, b, 0.5, nullptr));

  // NaNs with different payloads are a real mismatch.
  double otherNan = qnan;
  std::uint64_t bits;
  std::memcpy(&bits, &otherNan, sizeof bits);
  bits ^= 1;  // flip a payload bit, still NaN
  std::memcpy(&otherNan, &bits, sizeof bits);
  b.array("A").data() = {otherNan, 1.0, 2.0};
  EXPECT_EQ(maxArrayDifference(a, b, "A"),
            std::numeric_limits<double>::infinity());
}

TEST(Interp, StatesMatchDetectsDifference) {
  Program p = sumProgram();
  Machine a = runProgram(p, {{"N", 5}}, [](Machine& mm) {
    std::vector<std::int64_t> idx{1};
    mm.array("B").set(idx, 1.0);
  });
  Machine b = runProgram(p, {{"N", 5}}, nullptr);
  std::string which;
  EXPECT_FALSE(statesMatch(p, a, p, b, 1e-12, &which));
  // S differs (B differs too; either may be reported first).
  EXPECT_FALSE(which.empty());
}

}  // namespace
}  // namespace fixfuse::interp
