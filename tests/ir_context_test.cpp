// Unit tests for the interning core: ir::Context symbol round-trips,
// hash-consed Expr canonicalization (structural equality == pointer
// equality), float-bit fidelity of consing (NaN payloads, signed zero),
// a many-thread interning/consing smoke test, and the ref-qualified
// accessor convention (compile-fail via dependent requires-expressions,
// per tests/poly_set_test.cpp).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "ir/context.h"
#include "ir/expr.h"
#include "ir/rewrite.h"
#include "support/symbol.h"

namespace fixfuse {
namespace {

using ir::Context;
using ir::Expr;
using ir::ExprPtr;
using ir::Symbol;
using ir::globalContext;

TEST(Context, InternNameRoundTrip) {
  Symbol s = Context::intern("ctx_rt_alpha");
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(Context::name(s), "ctx_rt_alpha");
  // Interning again returns the same id.
  EXPECT_EQ(Context::intern("ctx_rt_alpha"), s);
  // Distinct names get distinct ids.
  EXPECT_NE(Context::intern("ctx_rt_beta"), s);
}

TEST(Context, SymbolsTableIsShared) {
  Symbol s = Context::intern("ctx_shared_name");
  // The context's table is the process-wide support table poly uses.
  EXPECT_EQ(globalContext().symbols().name(s), "ctx_shared_name");
  EXPECT_EQ(support::internSymbol("ctx_shared_name"), s);
}

TEST(Context, StructurallyEqualExprsArePointerIdentical) {
  ExprPtr a = ir::add(ir::mul(ir::iv("ci"), ir::ic(3)), ir::iv("cj"));
  ExprPtr b = ir::add(ir::mul(ir::iv("ci"), ir::ic(3)), ir::iv("cj"));
  EXPECT_EQ(a.get(), b.get());
  // Subtrees are canonical too.
  EXPECT_EQ(a->lhs().get(), ir::mul(ir::iv("ci"), ir::ic(3)).get());
  // A structurally different tree is a different node.
  ExprPtr c = ir::add(ir::mul(ir::iv("ci"), ir::ic(4)), ir::iv("cj"));
  EXPECT_NE(a.get(), c.get());
  // Operand order matters (no implicit commutation).
  ExprPtr d = ir::add(ir::iv("cj"), ir::mul(ir::iv("ci"), ir::ic(3)));
  EXPECT_NE(a.get(), d.get());
}

TEST(Context, ArrayAndScalarLoadsConsOnSymbolAndIndices) {
  ExprPtr a = ir::load("Ac", {ir::iv("ci"), ir::iv("cj")});
  ExprPtr b = ir::load("Ac", {ir::iv("ci"), ir::iv("cj")});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), ir::load("Bc", {ir::iv("ci"), ir::iv("cj")}).get());
  EXPECT_NE(a.get(), ir::load("Ac", {ir::iv("cj"), ir::iv("ci")}).get());
  EXPECT_EQ(ir::sloadf("cx").get(), ir::sloadf("cx").get());
  EXPECT_NE(ir::sloadf("cx").get(), ir::sloadi("cx").get());
}

TEST(Context, ExprCountGrowsOnlyForNewStructure) {
  // Force the operands to exist first so the deltas below are exact.
  ExprPtr operand = ir::iv("cc_unique_var");
  std::size_t before = globalContext().exprCount();
  ExprPtr fresh = ir::add(operand, ir::ic(123456789));
  std::size_t after = globalContext().exprCount();
  EXPECT_GE(after, before + 1);
  // Rebuilding the same structure allocates nothing.
  ExprPtr again = ir::add(operand, ir::ic(123456789));
  EXPECT_EQ(again.get(), fresh.get());
  EXPECT_EQ(globalContext().exprCount(), after);
}

TEST(Context, FloatConsingIsBitExact) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  // Same bit pattern -> same node, even though NaN != NaN as doubles.
  EXPECT_EQ(ir::fc(qnan).get(), ir::fc(qnan).get());
  // A different NaN payload is a different constant.
  const double nan2 = std::bit_cast<double>(
      std::bit_cast<std::uint64_t>(qnan) | 0x1u);
  ASSERT_TRUE(std::isnan(nan2));
  EXPECT_NE(ir::fc(qnan).get(), ir::fc(nan2).get());
  // Signed zero: 0.0 and -0.0 compare equal as doubles but are distinct
  // bit patterns, hence distinct constants.
  EXPECT_NE(ir::fc(0.0).get(), ir::fc(-0.0).get());
  EXPECT_EQ(ir::fc(-0.0).get(), ir::fc(-0.0).get());
}

TEST(Context, ConcurrentInterningAndConsingAgree) {
  constexpr int kThreads = 8;
  std::vector<std::vector<Symbol>> syms(kThreads);
  std::vector<const Expr*> roots(kThreads, nullptr);
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([t, &syms, &roots] {
        for (int i = 0; i < 100; ++i)
          syms[static_cast<std::size_t>(t)].push_back(
              Context::intern("ctx_mt_" + std::to_string(i)));
        roots[static_cast<std::size_t>(t)] =
            ir::add(ir::mul(ir::iv("ctx_mt_7"), ir::ic(2)),
                    ir::iv("ctx_mt_13"))
                .get();
      });
    for (auto& w : workers) w.join();
  }
  // Every thread resolved each name to the same symbol...
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(syms[0], syms[t]);
  // ...and consed the same expression to the same canonical node.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(roots[0], roots[t]);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(Context::name(syms[0][static_cast<std::size_t>(i)]),
              "ctx_mt_" + std::to_string(i));
}

// Ref-qualification regression (CLAUDE.md): accessors returning
// references to members must not be callable on rvalues. Dependent
// requires-expressions turn the deleted overloads into testable falses.
template <typename T>
constexpr bool rvalueSymbolsCallable =
    requires(T t) { std::move(t).symbols(); };
template <typename T>
constexpr bool rvalueNameCallable =
    requires(T t, Symbol s) { std::move(t).name(s); };
template <typename T>
constexpr bool rvalueEntriesCallable =
    requires(T t) { std::move(t).entries(); };
template <typename T>
constexpr bool lvalueEntriesCallable =
    requires(const T& t) { t.entries(); };

TEST(Context, AccessorsRejectRvalues) {
  static_assert(!rvalueSymbolsCallable<Context>);
  static_assert(!rvalueSymbolsCallable<const Context>);
  static_assert(!rvalueNameCallable<support::SymbolTable>);
  static_assert(!rvalueEntriesCallable<ir::SymSubst>);
  // Lvalue access is unchanged.
  static_assert(lvalueEntriesCallable<ir::SymSubst>);
  ir::SymSubst s;
  s.set(Context::intern("ctx_refq"), ir::ic(1));
  std::size_t seen = 0;
  for (const auto& e : s.entries()) {
    (void)e;
    ++seen;
  }
  EXPECT_EQ(seen, 1u);
}

}  // namespace
}  // namespace fixfuse
