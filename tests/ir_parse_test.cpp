// Parser tests: hand-written programs, error reporting, and the print ->
// parse -> print round trip over every kernel program version (the
// strongest structural check: the grammar covers everything the
// pipeline can generate).
#include <gtest/gtest.h>

#include <cstring>

#include "interp/compare.h"
#include "interp/interp.h"
#include "ir/parse.h"
#include "ir/printer.h"
#include "kernels/common.h"
#include "kernels/native.h"

namespace fixfuse::ir {
namespace {

TEST(Parse, MinimalProgram) {
  Program p = parseProgram(R"(
    program(N) {
      double A[(N + 1)];
      for i = 1 .. N {
        A[i] = 0;
      }
    }
  )");
  EXPECT_EQ(p.params, (std::vector<std::string>{"N"}));
  ASSERT_EQ(p.arrays.size(), 1u);
  interp::Machine m = interp::runProgram(p, {{"N", 5}}, [](interp::Machine& mm) {
    for (auto& v : mm.array("A").data()) v = 7.0;
  });
  std::vector<std::int64_t> idx{3};
  EXPECT_DOUBLE_EQ(m.array("A").get(idx), 0.0);
}

TEST(Parse, ScalarsGuardsAndCalls) {
  Program p = parseProgram(R"(
    program(N) {
      double A[(N + 1)];
      double t;
      long m;
      t = 0;
      m = 1;
      for i = 1 .. N {
        if fabs(A[i]) > t {
          t = fabs(A[i]);
          m = i;
        }
      }
      A[1] = sqrt(t);
    }
  )");
  interp::Machine m = interp::runProgram(p, {{"N", 4}}, [](interp::Machine& mm) {
    double vals[] = {0, 1.0, -9.0, 4.0, 2.0};
    for (int i = 1; i <= 4; ++i) {
      std::vector<std::int64_t> idx{i};
      mm.array("A").set(idx, vals[i]);
    }
  });
  EXPECT_EQ(m.intScalar("m"), 2);
  std::vector<std::int64_t> one{1};
  EXPECT_DOUBLE_EQ(m.array("A").get(one), 3.0);
}

TEST(Parse, SelectFloorDivModMinMax) {
  Program p = parseProgram(R"(
    program() {
      double A[4];
      long q;
      q = fdiv(-7, 2) + mod(-7, 2) + min(3, 1) + max(3, 1);
      A[0] = ((q == -2) ? 1.5 : 2.5);
    }
  )");
  interp::Machine m = interp::runProgram(p, {}, nullptr);
  EXPECT_EQ(m.intScalar("q"), -4 + 1 + 1 + 3);
  std::vector<std::int64_t> z{0};
  EXPECT_DOUBLE_EQ(m.array("A").get(z), 2.5);
}

TEST(Parse, PrecedenceMatchesC) {
  Program p = parseProgram(R"(
    program() {
      long a;
      long b;
      a = 2 + 3 * 4;
      b = 10 - 2 - 3;
    }
  )");
  interp::Machine m = interp::runProgram(p, {}, nullptr);
  EXPECT_EQ(m.intScalar("a"), 14);
  EXPECT_EQ(m.intScalar("b"), 5);  // left associativity
}

TEST(Parse, ErrorsAreDescriptive) {
  EXPECT_THROW(parseProgram("prog() {}"), ParseError);
  EXPECT_THROW(parseProgram("program() { x = 1; }"), ParseError);  // undecl
  EXPECT_THROW(parseProgram("program() { double A[3]; A[0] = ; }"),
               ParseError);
  EXPECT_THROW(parseProgram("program() { long q; q = 1.5; }"), ParseError);
  EXPECT_THROW(parseProgram("program() { double A[2]; for i = 1 .. B { "
                            "A[0] = 1; } }"),
               ParseError);
}

class KernelRoundTrip
    : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelRoundTrip, PrintParsePrintIsStable) {
  kernels::KernelBundle b = kernels::buildKernel(GetParam(), {3});
  for (const ir::Program* prog :
       {&b.seq, &b.fixed, &b.fixedOpt, &b.tiled, &b.tiledBaseline}) {
    std::string text = printProgram(*prog);
    Program reparsed = parseProgram(text);
    EXPECT_EQ(printProgram(reparsed), text);
  }
}

TEST_P(KernelRoundTrip, ReparsedProgramComputesSameResult) {
  kernels::KernelBundle b = kernels::buildKernel(GetParam(), {3});
  Program reparsed = parseProgram(printProgram(b.fixed));
  std::int64_t n = 9;
  std::map<std::string, std::int64_t> params{{"N", n}};
  if (GetParam() == "jacobi") params["M"] = 3;
  kernels::native::Matrix a0 =
      GetParam() == "cholesky" ? kernels::native::spdMatrix(n, 3)
                               : kernels::native::randomMatrix(n, 3, 0.5, 1.5);
  auto run = [&](const Program& p) {
    interp::Machine m(p, params);
    m.array("A").data() = a0;
    interp::Interpreter it(p, m, nullptr);
    it.run();
    return m.array("A").data();
  };
  auto x = run(b.fixed);
  auto y = run(reparsed);
  ASSERT_EQ(x.size(), y.size());
  // Bit-pattern compare: the simplified QR can yield NaN on some inputs.
  EXPECT_TRUE(interp::bitsEqual(x, y));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelRoundTrip,
                         ::testing::Values("lu", "cholesky", "qr", "jacobi"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace fixfuse::ir
