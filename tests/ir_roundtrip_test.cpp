// printProgram -> parseProgram property test over the fuzz-system
// generator: for every seed the printed text reparses to a program that
// prints identically, and - because Expr nodes are hash-consed - the
// reparsed expression trees are POINTER-identical to the originals (the
// parser re-interns every name and re-conses every node through the same
// arena). This pins the whole textual pipeline (examples/textual_pipeline
// reads programs back in) to the interning core.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fuse.h"
#include "fuzz_systems.h"
#include "ir/parse.h"
#include "ir/printer.h"
#include "ir/rewrite.h"

namespace fixfuse {
namespace {

/// Every Expr node of the program body in deterministic walk order.
std::vector<const ir::Expr*> exprSequence(const ir::Program& p) {
  std::vector<const ir::Expr*> out;
  ir::forEachExpr(*p.body, [&](const ir::Expr& e) { out.push_back(&e); });
  return out;
}

class FuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRoundTrip, PrintParseIsStableAndReconsesToSameNodes) {
  tests::FuzzSystem fs = tests::randomSystem(GetParam());
  ASSERT_TRUE(fs.ok);
  ir::Program p = core::generateSequentialProgram(fs.sys);

  const std::string text = ir::printProgram(p);
  ir::Program q = ir::parseProgram(text);
  EXPECT_EQ(ir::printProgram(q), text);

  // Hash-consing: the reparsed tree is made of the very same canonical
  // nodes, position by position.
  std::vector<const ir::Expr*> a = exprSequence(p);
  std::vector<const ir::Expr*> b = exprSequence(q);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;

  // And a second reparse of the reprint changes nothing.
  ir::Program r = ir::parseProgram(ir::printProgram(q));
  EXPECT_EQ(exprSequence(r), a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace fixfuse
