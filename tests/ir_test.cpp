// Unit tests for the loop-nest IR: expression/statement construction and
// typing rules, cloning, affine bridge, rewriting, simplification,
// printing and validation.
#include <gtest/gtest.h>

#include "ir/affine_bridge.h"
#include "ir/printer.h"
#include "ir/rewrite.h"
#include "ir/stmt.h"
#include "ir/validate.h"
#include "support/error.h"

namespace fixfuse::ir {
namespace {

TEST(Expr, TypesAreInferred) {
  EXPECT_EQ(ic(3)->type(), Type::Int);
  EXPECT_EQ(fc(1.5)->type(), Type::Float);
  EXPECT_EQ(iv("i")->type(), Type::Int);
  EXPECT_EQ(load("A", {iv("i")})->type(), Type::Float);
  EXPECT_EQ(eqE(iv("i"), ic(0))->type(), Type::Bool);
  EXPECT_EQ(sqrtE(fc(2.0))->type(), Type::Float);
}

TEST(Expr, TypeMismatchThrows) {
  EXPECT_THROW(add(ic(1), fc(1.0)), InternalError);
  EXPECT_THROW(fdiv(ic(1), ic(2)), InternalError);   // Div is Float-only
  EXPECT_THROW(mod(fc(1.0), fc(2.0)), InternalError);
  EXPECT_THROW(sqrtE(ic(4)), InternalError);
  EXPECT_THROW(andE(eqE(ic(0), ic(0)), ic(1)), InternalError);
  EXPECT_THROW(load("A", {fc(1.0)}), InternalError);
}

TEST(Expr, AccessorsCheckKind) {
  ExprPtr e = ic(5);
  EXPECT_EQ(e->intValue(), 5);
  EXPECT_THROW(e->floatValue(), InternalError);
  EXPECT_THROW(e->lhs(), InternalError);
  EXPECT_THROW(e->indices(), InternalError);
}

TEST(Expr, Str) {
  ExprPtr e = sub(mul(ic(2), iv("i")), iv("j"));
  EXPECT_EQ(e->str(), "((2 * i) - j)");
  EXPECT_EQ(load("A", {iv("i"), add(iv("j"), ic(1))})->str(), "A[i][(j + 1)]");
  EXPECT_EQ(mod(iv("i"), ic(4))->str(), "mod(i, 4)");
  EXPECT_EQ(notE(eqE(iv("i"), ic(0)))->str(), "!((i == 0))");
}

TEST(Stmt, AssignAndAccessors) {
  StmtPtr s = aassign("A", {iv("i")}, fc(0.0));
  EXPECT_EQ(s->kind(), StmtKind::Assign);
  EXPECT_EQ(s->lhs().name, "A");
  EXPECT_FALSE(s->lhs().isScalar());
  EXPECT_THROW(s->cond(), InternalError);
  StmtPtr t = sassign("temp", fc(0.0));
  EXPECT_TRUE(t->lhs().isScalar());
}

TEST(Stmt, LoopRejectsBadBounds) {
  EXPECT_THROW(Stmt::loop("i", fc(0.0), ic(5), blockS({})), InternalError);
  EXPECT_THROW(ifs(ic(1), {}), InternalError);  // non-Bool condition
}

TEST(Stmt, CloneIsDeepAndPreservesAssignIds) {
  StmtPtr body = loopS("i", ic(1), iv("N"),
                       {aassign("A", {iv("i")}, fc(1.0)),
                        ifs(gtE(iv("i"), ic(2)),
                            {aassign("A", {iv("i")}, fc(2.0))})});
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1))});
  p.body = blockS({});
  p.body->stmtsMutable().push_back(std::move(body));
  p.numberAssignments();
  Program q = p;  // copy = deep clone
  // Mutating the copy must not affect the original.
  int idsP = 0, idsQ = 0;
  forEachStmt(*p.body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::Assign) idsP += s.assignId();
  });
  forEachStmt(*q.body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::Assign) idsQ += s.assignId();
  });
  EXPECT_EQ(idsP, idsQ);
  EXPECT_EQ(idsP, 0 + 1);
}

TEST(Program, NumberAssignmentsIsTextualOrder) {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1))});
  p.body = blockS({aassign("A", {ic(0)}, fc(0.0)),
                   loopS("i", ic(1), iv("N"),
                         {aassign("A", {iv("i")}, fc(1.0)),
                          aassign("A", {iv("i")}, fc(2.0))})});
  EXPECT_EQ(p.numberAssignments(), 3);
  std::vector<int> ids;
  forEachStmt(*p.body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::Assign) ids.push_back(s.assignId());
  });
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 2}));
}

TEST(Program, DeclareRejectsDuplicates) {
  Program p;
  p.declareArray("A", {ic(4)});
  EXPECT_THROW(p.declareArray("A", {ic(4)}), InternalError);
  EXPECT_THROW(p.declareScalar("A", Type::Float), InternalError);
}

// --- affine bridge ----------------------------------------------------------

TEST(AffineBridge, ToAffineHandlesAffine) {
  ExprPtr e = add(sub(mul(ic(2), iv("i")), iv("j")), ic(7));
  auto a = toAffine(*e);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->coeff("i"), 2);
  EXPECT_EQ(a->coeff("j"), -1);
  EXPECT_EQ(a->constant(), 7);
}

TEST(AffineBridge, ToAffineRejectsNonAffine) {
  EXPECT_FALSE(toAffine(*mul(iv("i"), iv("j"))));
  EXPECT_FALSE(toAffine(*mod(iv("i"), ic(4))));
  EXPECT_FALSE(toAffine(*floordiv(iv("i"), ic(4))));
  EXPECT_FALSE(toAffine(*sloadi("m")));  // data-dependent scalar
}

TEST(AffineBridge, FromAffineRoundTrips) {
  poly::AffineExpr a = poly::AffineExpr::term(3, "i") -
                       poly::AffineExpr::var("j") + poly::AffineExpr(5);
  ExprPtr e = fromAffine(a);
  auto back = toAffine(*e);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, a);
  EXPECT_EQ(*toAffine(*fromAffine(poly::AffineExpr(0))), poly::AffineExpr(0));
}

TEST(AffineBridge, CondToPiecesConjunction) {
  // (i == k) && (j >= k+1)
  ExprPtr c = andE(eqE(iv("i"), iv("k")), geE(iv("j"), add(iv("k"), ic(1))));
  auto ps = condToPieces(*c);
  ASSERT_TRUE(ps);
  ASSERT_EQ(ps->size(), 1u);
  EXPECT_EQ((*ps)[0].size(), 2u);
}

TEST(AffineBridge, CondToPiecesNeSplits) {
  auto ps = condToPieces(*neE(iv("i"), iv("j")));
  ASSERT_TRUE(ps);
  EXPECT_EQ(ps->size(), 2u);
}

TEST(AffineBridge, CondToPiecesDisjunctionAndNot) {
  ExprPtr c = orE(ltE(iv("i"), ic(2)), notE(leE(iv("j"), ic(5))));
  auto ps = condToPieces(*c);
  ASSERT_TRUE(ps);
  EXPECT_EQ(ps->size(), 2u);
  // Piece 2 is j > 5, i.e. j - 6 >= 0.
  EXPECT_EQ((*ps)[1][0].expr.coeff("j"), 1);
  EXPECT_EQ((*ps)[1][0].expr.constant(), -6);
}

TEST(AffineBridge, CondToPiecesRejectsDataDependent) {
  // abs(d) > temp is the LU pivot guard: not affine.
  ExprPtr c = gtE(fabsE(sloadf("d")), sloadf("temp"));
  EXPECT_FALSE(condToPieces(*c));
}

TEST(AffineBridge, PiecesToCondEvaluatesCorrectly) {
  // i == j or i > j+2 over a grid, via DNF -> Expr -> brute check.
  ExprPtr c = orE(eqE(iv("i"), iv("j")), gtE(iv("i"), add(iv("j"), ic(2))));
  auto ps = condToPieces(*c);
  ASSERT_TRUE(ps);
  ExprPtr rebuilt = piecesToCond(*ps);
  // The rebuilt condition must be semantically identical: check by
  // substituting constants and folding.
  for (std::int64_t i = -3; i <= 3; ++i)
    for (std::int64_t j = -3; j <= 3; ++j) {
      std::map<std::string, ExprPtr> bind{{"i", ic(i)}, {"j", ic(j)}};
      bool vOrig = false, vNew = false;
      ASSERT_TRUE(foldsToBool(simplify(substituteVars(c, bind)), vOrig));
      ASSERT_TRUE(foldsToBool(simplify(substituteVars(rebuilt, bind)), vNew));
      EXPECT_EQ(vOrig, vNew) << i << "," << j;
    }
}

// --- rewrite / simplify -----------------------------------------------------

TEST(Rewrite, SubstituteVarSharesUntouchedSubtrees) {
  ExprPtr body = add(iv("i"), iv("j"));
  ExprPtr other = load("A", {iv("k")});
  ExprPtr whole = mul(body, ic(2));
  ExprPtr r = substituteVar(whole, "z", ic(1));  // no-op
  EXPECT_EQ(r, whole);
  ExprPtr r2 = substituteVar(whole, "i", ic(1));
  EXPECT_NE(r2, whole);
  (void)other;
}

TEST(Rewrite, SubstituteIsSimultaneous) {
  // {i -> j, j -> i} swaps, it must not chain.
  ExprPtr e = sub(iv("i"), iv("j"));
  ExprPtr r = substituteVars(e, {{"i", iv("j")}, {"j", iv("i")}});
  auto a = toAffine(*r);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->coeff("j"), 1);
  EXPECT_EQ(a->coeff("i"), -1);
}

TEST(Rewrite, LoopVarShadowsSubstitution) {
  // substituting i must not touch the bound occurrence inside `do i`.
  StmtPtr s = loopS("i", ic(1), iv("M"), {aassign("A", {iv("i")}, fc(1.0))});
  StmtPtr r = substituteVarsStmt(*s, {{"i", ic(42)}, {"M", ic(3)}});
  // Bounds substituted, body untouched w.r.t. i.
  EXPECT_EQ(r->upperBound()->intValue(), 3);
  const Stmt& inner = *r->loopBody()->stmts()[0];
  EXPECT_EQ(inner.lhs().indices[0]->kind(), ExprKind::VarRef);
  EXPECT_EQ(inner.lhs().indices[0]->name(), "i");
}

TEST(Rewrite, SimplifyFoldsAffine) {
  ExprPtr e = add(sub(iv("i"), iv("i")), ic(3));
  ExprPtr s = simplify(e);
  EXPECT_EQ(s->kind(), ExprKind::IntConst);
  EXPECT_EQ(s->intValue(), 3);
}

TEST(Rewrite, SimplifyFoldsDivMod) {
  EXPECT_EQ(simplify(floordiv(ic(7), ic(2)))->intValue(), 3);
  EXPECT_EQ(simplify(mod(ic(-7), ic(3)))->intValue(), 2);
  EXPECT_EQ(simplify(mod(iv("i"), ic(1)))->intValue(), 0);
  // fdiv by 1 is identity.
  ExprPtr d = simplify(floordiv(iv("i"), ic(1)));
  EXPECT_EQ(d->kind(), ExprKind::VarRef);
}

TEST(Rewrite, SimplifyFoldsBools) {
  bool v = false;
  EXPECT_TRUE(foldsToBool(simplify(ltE(ic(1), ic(2))), v));
  EXPECT_TRUE(v);
  ExprPtr e = andE(geE(ic(5), ic(5)), eqE(iv("i"), ic(0)));
  ExprPtr s = simplify(e);
  // true && X -> X
  EXPECT_EQ(s->kind(), ExprKind::Compare);
  EXPECT_EQ(s->lhs()->name(), "i");
}

TEST(Rewrite, SimplifyStmtPrunesDeadIf) {
  StmtPtr s = blockS({ifs(ltE(ic(2), ic(1)), {sassign("x", fc(1.0))}),
                      sassign("y", fc(2.0))});
  StmtPtr r = simplifyStmt(*s);
  ASSERT_TRUE(r);
  ASSERT_EQ(r->kind(), StmtKind::Block);
  EXPECT_EQ(r->stmts().size(), 1u);
  EXPECT_EQ(r->stmts()[0]->lhs().name, "y");
}

TEST(Rewrite, SimplifyStmtKeepsElseWhenThenDies) {
  StmtPtr s = Stmt::ifThenElse(eqE(iv("i"), ic(0)),
                               blockS({}),  // empty then
                               blockS({sassign("y", fc(1.0))}));
  StmtPtr r = simplifyStmt(*s);
  ASSERT_TRUE(r);
  ASSERT_EQ(r->kind(), StmtKind::If);
  // Condition must be negated, body is the old else branch.
  EXPECT_EQ(r->thenBody()->stmts()[0]->lhs().name, "y");
}

TEST(Rewrite, ForEachExprVisitsEverything) {
  StmtPtr s = loopS("i", ic(1), iv("N"),
                    {aassign("A", {iv("i")}, load("B", {sub(iv("i"), ic(1))}))});
  int varRefs = 0;
  forEachExpr(*s, [&](const Expr& e) {
    if (e.kind() == ExprKind::VarRef) ++varRefs;
  });
  EXPECT_EQ(varRefs, 3);  // N, i (lhs index), i (load index)
}

// --- printer / validate -----------------------------------------------------

TEST(Printer, ProgramRendering) {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1))});
  p.declareScalar("temp", Type::Float);
  p.body = blockS({loopS("i", ic(1), iv("N"),
                         {aassign("A", {iv("i")}, fc(0.0))})});
  std::string s = printProgram(p);
  EXPECT_NE(s.find("program(N)"), std::string::npos);
  EXPECT_NE(s.find("double A[(N + 1)]"), std::string::npos);
  EXPECT_NE(s.find("for i = 1 .. N"), std::string::npos);
  EXPECT_NE(s.find("A[i] = 0;"), std::string::npos);
}

Program validProgram() {
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(1)), add(iv("N"), ic(1))});
  p.declareScalar("temp", Type::Float);
  p.declareScalar("m", Type::Int);
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {aassign("A", {iv("i"), iv("i")}, fc(1.0)), sassign("m", iv("i"))})});
  return p;
}

TEST(Validate, AcceptsWellFormed) {
  Program p = validProgram();
  EXPECT_NO_THROW(validate(p));
}

TEST(Validate, RejectsUnboundVariable) {
  Program p = validProgram();
  p.body->stmtsMutable().push_back(aassign("A", {iv("q"), ic(0)}, fc(0.0)));
  EXPECT_THROW(validate(p), InternalError);
}

TEST(Validate, RejectsUndeclaredArray) {
  Program p = validProgram();
  p.body->stmtsMutable().push_back(aassign("B", {ic(0), ic(0)}, fc(0.0)));
  EXPECT_THROW(validate(p), InternalError);
}

TEST(Validate, RejectsRankMismatch) {
  Program p = validProgram();
  p.body->stmtsMutable().push_back(aassign("A", {ic(0)}, fc(0.0)));
  EXPECT_THROW(validate(p), InternalError);
}

TEST(Validate, RejectsScalarTypeMismatch) {
  Program p = validProgram();
  p.body->stmtsMutable().push_back(sassign("m", fc(0.0)));
  EXPECT_THROW(validate(p), InternalError);
}

TEST(Validate, RejectsLoopVarShadowingParam) {
  Program p = validProgram();
  p.body->stmtsMutable().push_back(
      loopS("N", ic(1), ic(2), {sassign("temp", fc(0.0))}));
  EXPECT_THROW(validate(p), InternalError);
}

TEST(Validate, RejectsNestedShadowing) {
  Program p = validProgram();
  p.body->stmtsMutable().push_back(loopS(
      "k", ic(1), ic(2), {loopS("k", ic(1), ic(2), {sassign("temp", fc(0.0))})}));
  EXPECT_THROW(validate(p), InternalError);
}

}  // namespace
}  // namespace fixfuse::ir
