// Parameterised end-to-end sweeps: every kernel, several locality tile
// sizes and problem sizes, all three program versions checked
// bit-for-bit against their baselines, plus native/IR cross-checks at
// each tile. This is the broad-coverage counterpart of kernels_test.cpp.
#include <gtest/gtest.h>

#include "interp/compare.h"
#include "interp/interp.h"
#include "kernels/common.h"
#include "kernels/native.h"

namespace fixfuse::kernels {
namespace {

struct Case {
  std::string kernel;
  std::int64_t tile;
};

/// Bit-pattern equality via the shared interp::bitsEqual helper: the
/// simplified QR of Fig. 1b can produce NaN on unlucky inputs (it divides
/// by a computed diagonal); identical programs then produce identical NaN
/// bit patterns, which operator== rejects.
::testing::AssertionResult bitEqual(const native::Matrix& a,
                                    const native::Matrix& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  if (!interp::bitsEqual(a, b))
    return ::testing::AssertionFailure() << "bit patterns differ";
  return ::testing::AssertionSuccess();
}

class KernelSweep : public ::testing::TestWithParam<Case> {
 protected:
  static native::Matrix initFor(const std::string& kernel, std::int64_t n,
                                std::uint64_t seed) {
    return kernel == "cholesky" ? native::spdMatrix(n, seed)
                                : native::randomMatrix(n, seed, 0.5, 1.5);
  }

  static native::Matrix runIr(const ir::Program& p,
                              const std::map<std::string, std::int64_t>& params,
                              const native::Matrix& a0) {
    interp::Machine m(p, params);
    m.array("A").data() = a0;
    interp::Interpreter it(p, m, nullptr);
    it.run();
    return m.array("A").data();
  }
};

TEST_P(KernelSweep, AllVersionsBitExact) {
  const Case& c = GetParam();
  KernelBundle b = buildKernel(c.kernel, {c.tile});
  for (std::int64_t n : {5, 8, 13}) {
    std::map<std::string, std::int64_t> params{{"N", n}};
    if (c.kernel == "jacobi") params["M"] = 4;
    native::Matrix a0 = initFor(c.kernel, n, 100 + static_cast<std::uint64_t>(n));
    native::Matrix seq = runIr(b.seq, params, a0);
    EXPECT_TRUE(bitEqual(runIr(b.fixed, params, a0), seq))
        << c.kernel << " N=" << n;
    EXPECT_TRUE(bitEqual(runIr(b.fixedOpt, params, a0), seq))
        << c.kernel << " N=" << n;
    native::Matrix base = runIr(b.tiledBaseline, params, a0);
    EXPECT_TRUE(bitEqual(runIr(b.tiled, params, a0), base))
        << c.kernel << " N=" << n << " tile=" << c.tile;
  }
}

TEST_P(KernelSweep, NativeTiledMatchesIrTiled) {
  const Case& c = GetParam();
  KernelBundle b = buildKernel(c.kernel, {c.tile});
  std::int64_t n = 12;
  std::map<std::string, std::int64_t> params{{"N", n}};
  std::int64_t m = 4;
  if (c.kernel == "jacobi") params["M"] = m;
  native::Matrix a0 = initFor(c.kernel, n, 9);
  native::Matrix ir = runIr(b.tiled, params, a0);

  native::Matrix nat = a0;
  if (c.kernel == "lu") {
    native::luTiled(nat.data(), n, c.tile);
  } else if (c.kernel == "cholesky") {
    native::cholTiled(nat.data(), n, c.tile);
  } else if (c.kernel == "qr") {
    native::Matrix x(native::matrixSize(n), 0.0);
    native::qrTiled(nat.data(), x.data(), n, c.tile);
  } else {
    native::Matrix h(native::matrixSize(n), 0.0);
    native::jacobiTiled(nat.data(), h.data(), n, m, c.tile);
  }
  EXPECT_TRUE(bitEqual(ir, nat)) << c.kernel << " tile=" << c.tile;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsTiles, KernelSweep,
    ::testing::Values(Case{"lu", 2}, Case{"lu", 4}, Case{"lu", 7},
                      Case{"cholesky", 2}, Case{"cholesky", 4},
                      Case{"cholesky", 7}, Case{"qr", 2}, Case{"qr", 4},
                      Case{"qr", 7}, Case{"jacobi", 2}, Case{"jacobi", 4},
                      Case{"jacobi", 7}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.kernel + "_t" + std::to_string(info.param.tile);
    });

}  // namespace
}  // namespace fixfuse::kernels
