// The centrepiece correctness validation: for each of the paper's four
// kernels,
//   * the FixDeps pipeline output (fixed) and the locality-tiled version
//     reproduce the Fig. 1 sequential semantics bit-for-bit,
//   * the unfixed fusion (Fig. 3) is demonstrably wrong where the paper
//     says it is (LU, QR, Jacobi) and legal for Cholesky,
//   * the native C++ implementations agree exactly with the IR versions,
//   * mathematical residuals hold (P*A = L*U, L*L^T = A, Jacobi vs a
//     reference stencil).
#include <gtest/gtest.h>

#include <cmath>

#include "interp/interp.h"
#include "ir/printer.h"
#include "kernels/common.h"
#include "kernels/native.h"
#include "support/rng.h"

namespace fixfuse::kernels {
namespace {

using interp::Machine;

native::Matrix getMatrix(const Machine& m, const std::string& name) {
  return m.array(name).data();
}

double maxDiff(const native::Matrix& a, const native::Matrix& b) {
  EXPECT_EQ(a.size(), b.size());
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

/// Interpret `p` with array "A" (and optionally others) initialised from
/// the given matrices; returns the final "A".
native::Matrix runIr(const ir::Program& p,
                     const std::map<std::string, std::int64_t>& params,
                     const std::map<std::string, native::Matrix>& init) {
  Machine m(p, params);
  for (const auto& [name, mat] : init) {
    if (!m.hasArray(name)) continue;
    m.array(name).data() = mat;
  }
  interp::Interpreter interp(p, m, nullptr);
  interp.run();
  return getMatrix(m, "A");
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

class LuTest : public ::testing::Test {
 protected:
  static KernelBundle& bundle() {
    static KernelBundle b = buildLu({/*tile=*/3});
    return b;
  }
};

TEST_F(LuTest, FixLogMatchesPaper) {
  // Only the pivot-search nest is tiled, with a Full tile on the fused i
  // dimension ("tile size N").
  const auto& log = bundle().fixLog;
  ASSERT_EQ(log.tiles.size(), 1u);
  EXPECT_EQ(log.tiles[0].nest, 1u);
  EXPECT_TRUE(log.tiles[0].sizes[0].isUnit());
  EXPECT_TRUE(log.tiles[0].sizes[1].isUnit());
  EXPECT_TRUE(log.tiles[0].sizes[2].isFull());
  EXPECT_TRUE(log.copies.empty());
}

TEST_F(LuTest, FixedMatchesSeqExactly) {
  for (std::int64_t n : {4, 7, 11}) {
    native::Matrix a0 = native::randomMatrix(n, 42 + static_cast<std::uint64_t>(n));
    native::Matrix seq = runIr(bundle().seq, {{"N", n}}, {{"A", a0}});
    native::Matrix fixed = runIr(bundle().fixed, {{"N", n}}, {{"A", a0}});
    EXPECT_EQ(maxDiff(seq, fixed), 0.0) << "N=" << n;
  }
}

TEST_F(LuTest, TiledMatchesFullSwapBaselineExactly) {
  // The tiled (blocked, full-row-swap) LU matches its full-swap baseline
  // bit for bit; it matches Fig. 1a in the U factor (row >= pivot parts
  // travel identically) but not in the L columns, by design.
  for (std::int64_t n : {4, 7, 11, 16}) {
    native::Matrix a0 = native::randomMatrix(n, 43 + static_cast<std::uint64_t>(n));
    native::Matrix base = runIr(bundle().tiledBaseline, {{"N", n}}, {{"A", a0}});
    native::Matrix tiled = runIr(bundle().tiled, {{"N", n}}, {{"A", a0}});
    EXPECT_EQ(maxDiff(base, tiled), 0.0) << "N=" << n;
  }
}

TEST_F(LuTest, FullSwapSharesUFactorWithFig1) {
  std::int64_t n = 9;
  native::Matrix a0 = native::randomMatrix(n, 4);
  native::Matrix partial = a0, full = a0;
  native::luSeq(partial.data(), n);
  native::luSeqFull(full.data(), n);
  const std::int64_t lda = n + 1;
  for (std::int64_t i = 1; i <= n; ++i)
    for (std::int64_t j = i; j <= n; ++j)  // upper triangle = U
      EXPECT_EQ(partial[static_cast<std::size_t>(j * lda + i)],
                full[static_cast<std::size_t>(j * lda + i)])
          << i << "," << j;
}

TEST_F(LuTest, UnfixedFusionIsWrong) {
  std::int64_t n = 8;
  native::Matrix a0 = native::randomMatrix(n, 5);
  native::Matrix seq = runIr(bundle().seq, {{"N", n}}, {{"A", a0}});
  native::Matrix fused = runIr(bundle().fused, {{"N", n}}, {{"A", a0}});
  EXPECT_GT(maxDiff(seq, fused), 0.0);
}

TEST_F(LuTest, NativeSeqMatchesIr) {
  std::int64_t n = 9;
  native::Matrix a0 = native::randomMatrix(n, 77);
  native::Matrix ir = runIr(bundle().seq, {{"N", n}}, {{"A", a0}});
  native::Matrix nat = a0;
  native::luSeq(nat.data(), n);
  EXPECT_EQ(maxDiff(ir, nat), 0.0);
}

TEST_F(LuTest, NativeTiledMatchesFullSwapSeqForManyTiles) {
  std::int64_t n = 13;
  native::Matrix a0 = native::randomMatrix(n, 3);
  native::Matrix ref = a0;
  native::luSeqFull(ref.data(), n);
  for (std::int64_t t : {1, 2, 3, 5, 8, 16}) {
    native::Matrix m = a0;
    native::luTiled(m.data(), n, t);
    EXPECT_EQ(maxDiff(ref, m), 0.0) << "tile " << t;
  }
}

TEST_F(LuTest, NativeFullSwapMatchesIrBaseline) {
  std::int64_t n = 9;
  native::Matrix a0 = native::randomMatrix(n, 87);
  native::Matrix ir = runIr(bundle().tiledBaseline, {{"N", n}}, {{"A", a0}});
  native::Matrix nat = a0;
  native::luSeqFull(nat.data(), n);
  EXPECT_EQ(maxDiff(ir, nat), 0.0);
  native::Matrix tiledIr = runIr(bundle().tiled, {{"N", n}}, {{"A", a0}});
  native::Matrix tiledNat = a0;
  native::luTiled(tiledNat.data(), n, 3);  // the bundle's tile is 3
  EXPECT_EQ(maxDiff(tiledIr, tiledNat), 0.0);
}

TEST_F(LuTest, FactorisationSolvesLinearSystems) {
  for (std::int64_t n : {6, 12, 20}) {
    native::Matrix a0 = native::randomMatrix(n, 11 + static_cast<std::uint64_t>(n));
    const std::int64_t lda = n + 1;
    // b = A0 * xhat with xhat[i] = i.
    std::vector<double> b(static_cast<std::size_t>(n + 1), 0.0);
    for (std::int64_t i = 1; i <= n; ++i)
      for (std::int64_t j = 1; j <= n; ++j)
        b[static_cast<std::size_t>(i)] +=
            a0[static_cast<std::size_t>(j * lda + i)] * static_cast<double>(j);
    native::Matrix lu = a0;
    std::vector<std::int64_t> piv(static_cast<std::size_t>(n + 1), 0);
    native::luSeqWithPivots(lu.data(), n, piv.data());
    auto x = native::luSolve(lu.data(), piv.data(), b, n);
    double worst = 0.0;
    for (std::int64_t i = 1; i <= n; ++i)
      worst = std::max(worst,
                       std::fabs(x[static_cast<std::size_t>(i)] -
                                 static_cast<double>(i)));
    EXPECT_LT(worst, 1e-8) << "N=" << n;
  }
}

TEST_F(LuTest, PivotingActuallyPivotsSomewhere) {
  std::int64_t n = 12;
  native::Matrix a0 = native::randomMatrix(n, 19);
  native::Matrix lu = a0;
  std::vector<std::int64_t> piv(static_cast<std::size_t>(n + 1), 0);
  native::luSeqWithPivots(lu.data(), n, piv.data());
  bool swapped = false;
  for (std::int64_t k = 1; k <= n; ++k) swapped |= piv[static_cast<std::size_t>(k)] != k;
  EXPECT_TRUE(swapped);
}

// ---------------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------------

class CholeskyTest : public ::testing::Test {
 protected:
  static KernelBundle& bundle() {
    static KernelBundle b = buildCholesky({/*tile=*/4});
    return b;
  }
};

TEST_F(CholeskyTest, FusionIsAlreadyLegal) {
  // The paper: "The fused program for Cholesky is already legal."
  EXPECT_TRUE(bundle().fixLog.tiles.empty());
  EXPECT_TRUE(bundle().fixLog.copies.empty());
}

TEST_F(CholeskyTest, FusedFixedTiledAllMatchSeq) {
  for (std::int64_t n : {4, 9, 14}) {
    native::Matrix a0 = native::spdMatrix(n, 100 + static_cast<std::uint64_t>(n));
    native::Matrix seq = runIr(bundle().seq, {{"N", n}}, {{"A", a0}});
    native::Matrix fused = runIr(bundle().fused, {{"N", n}}, {{"A", a0}});
    native::Matrix tiled = runIr(bundle().tiled, {{"N", n}}, {{"A", a0}});
    EXPECT_EQ(maxDiff(seq, fused), 0.0) << "N=" << n;
    EXPECT_EQ(maxDiff(seq, tiled), 0.0) << "N=" << n;
  }
}

TEST_F(CholeskyTest, NativeMatchesIrAndTiles) {
  std::int64_t n = 11;
  native::Matrix a0 = native::spdMatrix(n, 9);
  native::Matrix ir = runIr(bundle().seq, {{"N", n}}, {{"A", a0}});
  native::Matrix nat = a0;
  native::cholSeq(nat.data(), n);
  EXPECT_EQ(maxDiff(ir, nat), 0.0);
  for (std::int64_t t : {1, 2, 3, 7, 32}) {
    native::Matrix m = a0;
    native::cholTiled(m.data(), n, t);
    EXPECT_EQ(maxDiff(nat, m), 0.0) << "tile " << t;
  }
}

TEST_F(CholeskyTest, ResidualLLT) {
  for (std::int64_t n : {5, 10, 24}) {
    native::Matrix a0 = native::spdMatrix(n, 55 + static_cast<std::uint64_t>(n));
    native::Matrix l = a0;
    native::cholSeq(l.data(), n);
    EXPECT_LT(native::cholResidual(a0.data(), l.data(), n), 1e-9) << "N=" << n;
  }
}

// ---------------------------------------------------------------------------
// QR
// ---------------------------------------------------------------------------

class QrTest : public ::testing::Test {
 protected:
  static KernelBundle& bundle() {
    static KernelBundle b = buildQr({/*tile=*/3});
    return b;
  }
};

TEST_F(QrTest, FixLogTilesNormScaleAndXAccumulation) {
  // The norm accumulation is Full-tiled on the fused k dimension (the
  // paper's "tile size N"); the column scale and the X accumulation are
  // Full-tiled too (values consumed ahead of schedule - see
  // EXPERIMENTS.md on Fig. 4b).
  const auto& log = bundle().fixLog;
  ASSERT_EQ(log.tiles.size(), 3u);
  EXPECT_TRUE(log.copies.empty());
  // Bottom-up order: nest 5 (X accum), nest 3 (scale), nest 1 (norm).
  EXPECT_EQ(log.tiles[0].nest, 5u);
  EXPECT_TRUE(log.tiles[0].sizes[2].isFull());
  EXPECT_EQ(log.tiles[1].nest, 3u);
  EXPECT_TRUE(log.tiles[1].sizes[1].isFull());
  EXPECT_EQ(log.tiles[2].nest, 1u);
  EXPECT_TRUE(log.tiles[2].sizes[2].isFull());
}

TEST_F(QrTest, FixedAndTiledMatchSeqExactly) {
  for (std::int64_t n : {4, 8, 12}) {
    native::Matrix a0 =
        native::randomMatrix(n, 7 + static_cast<std::uint64_t>(n), 0.5, 1.5);
    native::Matrix x0(native::matrixSize(n), 0.0);
    std::map<std::string, native::Matrix> init{{"A", a0}, {"X", x0}};
    native::Matrix seq = runIr(bundle().seq, {{"N", n}}, init);
    native::Matrix fixed = runIr(bundle().fixed, {{"N", n}}, init);
    native::Matrix tiled = runIr(bundle().tiled, {{"N", n}}, init);
    EXPECT_EQ(maxDiff(seq, fixed), 0.0) << "N=" << n;
    EXPECT_EQ(maxDiff(seq, tiled), 0.0) << "N=" << n;
  }
}

TEST_F(QrTest, UnfixedFusionIsWrong) {
  std::int64_t n = 8;
  native::Matrix a0 = native::randomMatrix(n, 21, 0.5, 1.5);
  native::Matrix x0(native::matrixSize(n), 0.0);
  std::map<std::string, native::Matrix> init{{"A", a0}, {"X", x0}};
  native::Matrix seq = runIr(bundle().seq, {{"N", n}}, init);
  native::Matrix fused = runIr(bundle().fused, {{"N", n}}, init);
  EXPECT_GT(maxDiff(seq, fused), 0.0);
}

TEST_F(QrTest, NativeMatchesIrAndTiles) {
  std::int64_t n = 10;
  native::Matrix a0 = native::randomMatrix(n, 31, 0.5, 1.5);
  native::Matrix x0(native::matrixSize(n), 0.0);
  native::Matrix ir =
      runIr(bundle().seq, {{"N", n}}, {{"A", a0}, {"X", x0}});
  native::Matrix nat = a0, natX = x0;
  native::qrSeq(nat.data(), natX.data(), n);
  EXPECT_EQ(maxDiff(ir, nat), 0.0);
  for (std::int64_t t : {1, 2, 4, 8, 32}) {
    native::Matrix m = a0, mx = x0;
    native::qrTiled(m.data(), mx.data(), n, t);
    EXPECT_EQ(maxDiff(nat, m), 0.0) << "tile " << t;
  }
}

// ---------------------------------------------------------------------------
// Jacobi
// ---------------------------------------------------------------------------

class JacobiTest : public ::testing::Test {
 protected:
  static KernelBundle& bundle() {
    static KernelBundle b = buildJacobi({/*tile=*/4});
    return b;
  }
};

TEST_F(JacobiTest, FixLogIntroducesOneCopyArray) {
  const auto& log = bundle().fixLog;
  EXPECT_TRUE(log.tiles.empty());  // anti-dependences only
  ASSERT_EQ(log.copies.size(), 1u);
  EXPECT_EQ(log.copies[0].array, "A");
  EXPECT_EQ(log.copies[0].copiesInserted, 1u);
  EXPECT_EQ(log.copies[0].readsRedirected, 2u);  // the two "early" reads
}

TEST_F(JacobiTest, ScalarisationRemovedL) {
  EXPECT_FALSE(bundle().fixed.hasArray("L"));
  EXPECT_TRUE(bundle().fixed.hasScalar("l"));
  EXPECT_TRUE(bundle().fixed.hasArray("H_A_1"));
}

TEST_F(JacobiTest, FixedAndTiledMatchSeqExactly) {
  for (auto [n, m] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {6, 3}, {9, 5}, {12, 2}}) {
    native::Matrix a0 = native::randomMatrix(n, 60 + static_cast<std::uint64_t>(n));
    native::Matrix l0(native::matrixSize(n), 0.0);
    std::map<std::string, native::Matrix> init{{"A", a0}, {"L", l0}};
    native::Matrix seq = runIr(bundle().seq, {{"N", n}, {"M", m}}, init);
    native::Matrix fixed = runIr(bundle().fixed, {{"N", n}, {"M", m}}, init);
    native::Matrix tiled = runIr(bundle().tiled, {{"N", n}, {"M", m}}, init);
    EXPECT_EQ(maxDiff(seq, fixed), 0.0) << n << "x" << m;
    EXPECT_EQ(maxDiff(seq, tiled), 0.0) << n << "x" << m;
  }
}

TEST_F(JacobiTest, UnfixedFusionIsWrong) {
  std::int64_t n = 8, m = 2;
  native::Matrix a0 = native::randomMatrix(n, 8);
  native::Matrix l0(native::matrixSize(n), 0.0);
  std::map<std::string, native::Matrix> init{{"A", a0}, {"L", l0}};
  native::Matrix seq = runIr(bundle().seq, {{"N", n}, {"M", m}}, init);
  native::Matrix fused = runIr(bundle().fused, {{"N", n}, {"M", m}}, init);
  EXPECT_GT(maxDiff(seq, fused), 0.0);
}

TEST_F(JacobiTest, NativeSeqMatchesIrAndReference) {
  std::int64_t n = 10, m = 4;
  native::Matrix a0 = native::randomMatrix(n, 91);
  native::Matrix l0(native::matrixSize(n), 0.0);
  native::Matrix ir =
      runIr(bundle().seq, {{"N", n}, {"M", m}}, {{"A", a0}, {"L", l0}});
  native::Matrix nat = a0, natL = l0;
  native::jacobiSeq(nat.data(), natL.data(), n, m);
  EXPECT_EQ(maxDiff(ir, nat), 0.0);
  // Independent reference: double-buffered stencil.
  native::Matrix cur = a0, next = a0;
  const std::int64_t lda = n + 1;
  for (std::int64_t t = 0; t <= m; ++t) {
    for (std::int64_t i = 2; i <= n - 1; ++i)
      for (std::int64_t j = 2; j <= n - 1; ++j)
        next[static_cast<std::size_t>(i * lda + j)] =
            (cur[static_cast<std::size_t>((i - 1) * lda + j)] +
             cur[static_cast<std::size_t>(i * lda + (j - 1))] +
             cur[static_cast<std::size_t>(i * lda + (j + 1))] +
             cur[static_cast<std::size_t>((i + 1) * lda + j)]) *
            0.25;
    cur = next;
  }
  EXPECT_EQ(maxDiff(nat, cur), 0.0);
}

TEST_F(JacobiTest, NativeTiledMatchesSeqForManyTiles) {
  std::int64_t n = 14, m = 6;
  native::Matrix a0 = native::randomMatrix(n, 13);
  native::Matrix ref = a0, refL(native::matrixSize(n), 0.0);
  native::jacobiSeq(ref.data(), refL.data(), n, m);
  for (std::int64_t t : {1, 2, 3, 5, 8, 64}) {
    native::Matrix a = a0, h(native::matrixSize(n), 0.0);
    native::jacobiTiled(a.data(), h.data(), n, m, t);
    EXPECT_EQ(maxDiff(ref, a), 0.0) << "tile " << t;
  }
}

// ---------------------------------------------------------------------------
// Cross-kernel checks
// ---------------------------------------------------------------------------

TEST(AllKernels, BuildKernelDispatch) {
  for (const std::string name : {"lu", "cholesky", "qr", "jacobi"}) {
    KernelBundle b = buildKernel(name, {/*tile=*/0});
    EXPECT_EQ(b.name, name);
    // tile = 0: the tiled program is the fixed one.
    EXPECT_EQ(ir::printProgram(b.tiled), ir::printProgram(b.fixed));
  }
  EXPECT_THROW(buildKernel("nope", {}), InternalError);
}

TEST(AllKernels, NoExtraArraysExceptJacobiCopy) {
  // "No extra memory space is introduced for these kernels": LU, QR and
  // Cholesky introduce nothing; Jacobi trades L for H.
  EXPECT_EQ(buildLu({0}).fixed.arrays.size(), 1u);        // A
  EXPECT_EQ(buildCholesky({0}).fixed.arrays.size(), 1u);  // A
  EXPECT_EQ(buildQr({0}).fixed.arrays.size(), 2u);        // A, X
  const auto jac = buildJacobi({0});
  EXPECT_EQ(jac.fixed.arrays.size(), 2u);  // A, H (L scalarised away)
}

}  // namespace
}  // namespace fixfuse::kernels
