// Differential tests for the native execution backend (emitC -> host cc
// -> dlopen, codegen::NativeModule): every native run must land in a
// machine state bit-for-bit identical to the bytecode engine's - every
// array byte-identical, every scalar bit-identical (QR legitimately
// produces NaN, so comparisons are memcmp-based). The programs come
// from every variant of the four paper kernel pipelines (seq / fixed /
// fixedOpt / tiled: guards, min/max and floor-div/mod tile bounds,
// data-dependent int-scalar subscripts, Select reads) and from the
// FixDeps fuzz generator (random dependence patterns, shifted
// subscripts).
//
// Natives emit no observer Events, so the equivalence contract is
// state-only; requesting Backend::Native with an observer attached must
// silently run the bytecode engine instead (tested below). Everything
// here skips cleanly when the host has no usable C compiler - the
// native backend is an accelerator, and graceful degradation is part of
// its contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codegen/module_cache.h"
#include "codegen/native_module.h"
#include "core/fuse.h"
#include "fuzz_systems.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "kernels/common.h"
#include "kernels/native.h"
#include "pipeline/native_exec.h"

namespace fixfuse::interp {
namespace {

using Dispatch = Interpreter::Dispatch;

#define SKIP_WITHOUT_HOST_CC()                                       \
  if (!codegen::hostCompilerAvailable())                             \
  GTEST_SKIP() << "no usable host compiler ("                        \
               << codegen::hostCompilerUnavailableReason()           \
               << "); the native backend degrades to bytecode here"

/// Run `p` once per backend on identical initial state and require the
/// final machines bit-for-bit equal (arrays and scalars). The native
/// interpreter also self-verifies (FIXFUSE_NATIVE_VERIFY defaults on),
/// so a divergence would already throw NativeVerificationError; the
/// explicit comparison keeps this test meaningful with verification
/// disabled in the environment.
void expectNativeMatchesBytecode(
    const ir::Program& p, const std::map<std::string, std::int64_t>& params,
    const std::function<void(Machine&)>& init, const std::string& label) {
  Machine ref(p, params);
  if (init) init(ref);
  Interpreter bc(p, ref, nullptr, Dispatch::Batched, Backend::Bytecode);
  bc.run();

  Machine m(p, params);
  if (init) init(m);
  Interpreter nat(p, m, nullptr, Dispatch::Batched, Backend::Native);
  nat.run();

  std::string where;
  EXPECT_TRUE(machineStateBitwiseEqual(p, m, ref, &where))
      << label << ": '" << where << "' differs from the bytecode reference";
}

TEST(NativeBackend, AllKernelPipelineVariantsStateEquivalent) {
  SKIP_WITHOUT_HOST_CC();
  for (const char* kernel : {"lu", "cholesky", "qr", "jacobi"}) {
    kernels::KernelBundle b = kernels::buildKernel(kernel, {/*tile=*/4});
    std::map<std::string, std::int64_t> params{{"N", 12}};
    if (std::string(kernel) == "jacobi") params["M"] = 3;
    kernels::native::Matrix a0 =
        std::string(kernel) == "cholesky"
            ? kernels::native::spdMatrix(12, 7)
            : kernels::native::randomMatrix(12, 7, 0.5, 1.5);
    auto init = [&a0](Machine& m) {
      if (m.hasArray("A")) m.array("A").data() = a0;
    };
    const char* names[] = {"seq", "fixed", "fixedOpt", "tiled"};
    const ir::Program* variants[] = {&b.seq, &b.fixed, &b.fixedOpt, &b.tiled};
    for (int i = 0; i < 4; ++i)
      expectNativeMatchesBytecode(*variants[i], params, init,
                                  std::string(kernel) + "/" + names[i]);
  }
}

TEST(NativeBackend, FuzzProgramsStateEquivalent) {
  SKIP_WITHOUT_HOST_CC();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    tests::FuzzSystem fz = tests::randomSystem(seed);
    ir::Program seq = core::generateSequentialProgram(fz.sys);
    ir::Program fused = core::generateFusedProgram(fz.sys);
    auto init = [seed](Machine& m) { tests::initFuzzArrays(m, seed, 91, 16); };
    std::map<std::string, std::int64_t> params{{"N", 16}};
    expectNativeMatchesBytecode(seq, params, init,
                                "fuzz seq seed=" + std::to_string(seed));
    // `fused` may be semantically wrong vs `seq` (that is FixDeps' whole
    // point), but native-vs-bytecode on the *same* program must still
    // agree bit for bit.
    expectNativeMatchesBytecode(fused, params, init,
                                "fuzz fused seed=" + std::to_string(seed));
  }
}

TEST(NativeBackend, IndirectGatherProgramsStateEquivalent) {
  // The emitC gather (`(long)` truncation into a column-major index)
  // must land in exactly the bytecode state, unfused and
  // inspector-fused alike.
  SKIP_WITHOUT_HOST_CC();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    tests::IndirectProgram ip = tests::randomIndirectProgram(seed);
    auto init = [&ip, seed](Machine& m) {
      tests::initIndirectArrays(m, ip.bindings, seed);
    };
    expectNativeMatchesBytecode(ip.prog, ip.bindings.params, init,
                                "indirect seed=" + std::to_string(seed));
    if (ip.triangular)
      expectNativeMatchesBytecode(deps::fuseTopLevelNests(ip.prog),
                                  ip.bindings.params, init,
                                  "indirect fused seed=" +
                                      std::to_string(seed));
  }
}

TEST(NativeBackend, ScalarsAreWrittenBack) {
  // Final scalar values must round-trip out of the native function (the
  // emitted C keeps them as locals; the entry trampoline copies them in
  // and out through pointer parameters).
  SKIP_WITHOUT_HOST_CC();
  using namespace fixfuse::ir;
  Program p;
  p.declareArray("A", {ic(8)});
  p.declareScalar("s", Type::Float);
  p.declareScalar("k", Type::Int);
  p.body = blockS(
      {sassign("s", fc(0.0)),
       loopS("i", ic(1), ic(5),
             {sassign("s", add(sloadf("s"), load("A", {iv("i")}))),
              sassign("k", iv("i"))}),
       aassign("A", {ic(0)}, sloadf("s"))});
  auto init = [](Machine& m) {
    double x = 0.5;
    for (auto& v : m.array("A").data()) v = (x += 0.25);
  };

  Machine m(p, {});
  init(m);
  Interpreter it(p, m, nullptr, Dispatch::Batched, Backend::Native);
  it.run();

  Machine ref(p, {});
  init(ref);
  Interpreter bc(p, ref, nullptr, Dispatch::Batched, Backend::Bytecode);
  bc.run();

  EXPECT_EQ(m.intScalars().at("k"), 5);
  EXPECT_TRUE(bitsEqual(&m.floatScalars().at("s"),
                        &ref.floatScalars().at("s"), 1));
  std::string where;
  EXPECT_TRUE(machineStateBitwiseEqual(p, m, ref, &where)) << where;
}

TEST(NativeBackend, ObserverForcesBytecodeAndEmitsTheFullTrace) {
  // Natives emit no Events; an observer-attached Backend::Native request
  // must silently run the bytecode engine, producing the exact bytecode
  // event stream and final state.
  kernels::KernelBundle b = kernels::buildKernel("cholesky", {/*tile=*/0});
  std::map<std::string, std::int64_t> params{{"N", 10}};
  kernels::native::Matrix a0 = kernels::native::spdMatrix(10, 3);
  auto init = [&a0](Machine& m) { m.array("A").data() = a0; };

  Machine mBc(b.seq, params);
  init(mBc);
  TraceRecorder recBc;
  Interpreter bc(b.seq, mBc, &recBc, Dispatch::Batched, Backend::Bytecode);
  bc.run();

  Machine mNat(b.seq, params);
  init(mNat);
  TraceRecorder recNat;
  Interpreter nat(b.seq, mNat, &recNat, Dispatch::Batched, Backend::Native);
  nat.run();

  ASSERT_FALSE(recNat.events.empty());
  EXPECT_TRUE(recNat.events == recBc.events);
  std::string where;
  EXPECT_TRUE(machineStateBitwiseEqual(b.seq, mNat, mBc, &where)) << where;
}

TEST(NativeBackend, ModuleCacheHitsOnSecondRequest) {
  SKIP_WITHOUT_HOST_CC();
  kernels::KernelBundle b = kernels::buildKernel("cholesky", {/*tile=*/0});
  codegen::ModuleCache& cache = codegen::processModuleCache();
  bool cached1 = true, cached2 = false;
  auto m1 = cache.getOrCompile(b.fixed, &cached1);
  auto m2 = cache.getOrCompile(b.fixed, &cached2);
  // First call may or may not hit (another test can have compiled the
  // same hash-consed program already); the second must.
  EXPECT_TRUE(cached2);
  EXPECT_EQ(m1.get(), m2.get());
  std::string error = "preset";
  bool cached3 = false;
  auto m3 = cache.tryGetOrCompile(b.fixed, &error, &cached3);
  EXPECT_EQ(m3.get(), m1.get());
  EXPECT_TRUE(cached3);
  EXPECT_TRUE(error.empty());
  const support::CacheStats st = cache.stats();
  EXPECT_GE(st.hits, 2u);
  EXPECT_GE(st.misses, 1u);
}

TEST(NativeBackend, ModuleCacheIsBoundedWithLruEviction) {
  SKIP_WITHOUT_HOST_CC();
  kernels::KernelBundle chol = kernels::buildKernel("cholesky", {/*tile=*/0});
  kernels::KernelBundle qr = kernels::buildKernel("qr", {/*tile=*/0});
  codegen::ModuleCache cache(/*bound=*/1);
  EXPECT_EQ(cache.bound(), 1u);
  EXPECT_EQ(cache.shardCount(), 1u);
  bool cached = true;
  cache.getOrCompile(chol.fixed, &cached);
  EXPECT_FALSE(cached);
  cache.getOrCompile(qr.fixed, &cached);  // evicts cholesky
  EXPECT_FALSE(cached);
  cache.getOrCompile(chol.fixed, &cached);  // recompiles
  EXPECT_FALSE(cached);
  cache.getOrCompile(chol.fixed, &cached);
  EXPECT_TRUE(cached);
  const support::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(st.buildSeconds, 0.0);
}

TEST(NativeBackend, NativeExecutorReportsAndVerifies) {
  SKIP_WITHOUT_HOST_CC();
  kernels::KernelBundle b = kernels::buildKernel("cholesky", {/*tile=*/4});
  kernels::native::Matrix a0 = kernels::native::spdMatrix(16, 9);
  pipeline::NativeRunReport r;
  pipeline::NativeExecutor exec(/*verify=*/true);
  Machine m = exec.execute(
      b.tiled, {{"N", 16}},
      [&a0](Machine& mm) { mm.array("A").data() = a0; }, &r);

  EXPECT_TRUE(r.available);
  EXPECT_EQ(r.backend, "native");
  EXPECT_TRUE(r.verified);
  EXPECT_FALSE(r.compiler.empty());
  EXPECT_GE(r.compileSeconds, 0.0);
  EXPECT_GT(r.nativeSeconds, 0.0);
  EXPECT_GT(r.bytecodeSeconds, 0.0);
  EXPECT_GT(r.speedupVsBytecode, 0.0);
  const std::string j = r.json().str();
  for (const char* key :
       {"available", "backend", "compiler", "compile_cached",
        "compile_seconds", "native_seconds", "bytecode_seconds",
        "speedup_vs_bytecode", "verified"})
    EXPECT_NE(j.find(key), std::string::npos) << key;

  // The executor's returned machine is the native result - equal to a
  // plain bytecode run.
  Machine ref(b.tiled, {{"N", 16}});
  ref.array("A").data() = a0;
  Interpreter bc(b.tiled, ref, nullptr, Dispatch::Batched, Backend::Bytecode);
  bc.run();
  std::string where;
  EXPECT_TRUE(machineStateBitwiseEqual(b.tiled, m, ref, &where)) << where;
}

TEST(NativeBackend, ParseBackendNameAndBackendName) {
  EXPECT_EQ(parseBackendName("native"), Backend::Native);
  EXPECT_EQ(parseBackendName("Native"), Backend::Native);
  EXPECT_EQ(parseBackendName("NATIVE"), Backend::Native);
  EXPECT_EQ(parseBackendName("native "), std::nullopt);
  EXPECT_STREQ(backendName(Backend::Native), "native");
}

TEST(NativeBackend, HostCompilerProbeIsConsistent) {
  // Whatever the probe decided, it must be stable within the process and
  // the unavailability reason must be non-empty exactly when the
  // compiler is unusable.
  const bool avail = codegen::hostCompilerAvailable();
  EXPECT_EQ(codegen::hostCompilerAvailable(), avail);
  if (!avail) {
    EXPECT_FALSE(codegen::hostCompilerUnavailableReason().empty());
  }
  EXPECT_FALSE(codegen::hostCompilerCommand().empty());
}

}  // namespace
}  // namespace fixfuse::interp
