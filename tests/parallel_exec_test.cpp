// Tests for parallel tiled native execution (DESIGN.md item 15):
// deriveParallelPlan's kind/legality decisions on the paper kernels and
// on adversarial hand-built programs, the wave-table contract (the
// emitted `<fn>_wave_table` symbol must match the C++ reference
// computeWaveTable row for row), and the headline invariant - a
// parallel-native run lands in a machine state bit-for-bit identical to
// the serial-native and bytecode runs, for the kernels and for the
// FixDeps fuzz corpus routed through engine::Engine::compileSystem.
//
// Everything here follows the sound-in-the-safe-direction discipline:
// programs whose wave disjointness the polyhedral layer cannot *prove*
// must come back Serial (with a reason), never parallel-and-wrong.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "codegen/native_module.h"
#include "codegen/parallel.h"
#include "engine/engine.h"
#include "fuzz_systems.h"
#include "interp/compare.h"
#include "interp/interp.h"
#include "kernels/common.h"
#include "kernels/native.h"
#include "pipeline/native_exec.h"

namespace fixfuse::codegen {
namespace {

#define SKIP_WITHOUT_HOST_CC()                                       \
  if (!codegen::hostCompilerAvailable())                             \
  GTEST_SKIP() << "no usable host compiler ("                        \
               << codegen::hostCompilerUnavailableReason()           \
               << "); the parallel native backend degrades here"

using Kind = ParallelPlan::Kind;

poly::ParamContext simpleCtx() {
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  return ctx;
}

/// Run `p` through the NativeExecutor twice - serial native and
/// parallel native under `plan` - on identical initial state, both legs
/// self-verified against bytecode, and require the final machines
/// bit-for-bit equal.
void expectParallelMatchesSerial(
    const ir::Program& p, const ParallelPlan& plan,
    const std::map<std::string, std::int64_t>& params,
    const std::function<void(interp::Machine&)>& init,
    const std::string& label) {
  ASSERT_TRUE(plan.legal()) << label;
  pipeline::NativeExecutor exec(/*verify=*/true);

  pipeline::NativeRunReport serialR;
  interp::Machine serial = exec.execute(p, params, init, &serialR);
  ASSERT_TRUE(serialR.available) << label;
  EXPECT_EQ(serialR.backend, "native") << label;
  EXPECT_TRUE(serialR.verified) << label;

  pipeline::NativeExecOptions po;
  po.parallel = &plan;
  po.workers = 3;
  pipeline::NativeRunReport parR;
  interp::Machine par = exec.execute(p, params, init, &parR, po);
  ASSERT_TRUE(parR.available) << label;
  EXPECT_EQ(parR.backend, "parallel-native") << label;
  EXPECT_TRUE(parR.verified) << label;
  EXPECT_GE(parR.waves, 1u) << label;
  EXPECT_GE(parR.grains, parR.waves) << label;

  std::string where;
  EXPECT_TRUE(interp::machineStateBitwiseEqual(p, par, serial, &where))
      << label << ": '" << where
      << "' differs between parallel-native and serial-native";
}

TEST(ParallelPlan, KernelPlanKindsArePinned) {
  // The derivation is deterministic, so the four paper kernels' tiled
  // pipelines pin to fixed kinds: Cholesky's rectangular k-tiling and
  // Jacobi's skew-and-tile both schedule by anti-diagonal wavefronts;
  // LU (pivot search + row swaps: data-dependent int subscripts) and QR
  // (non-affine rotation structure) stay serial with a stated reason.
  kernels::KernelBundle chol = kernels::buildKernel("cholesky", {8});
  ParallelPlan pc =
      deriveParallelPlan(chol.tiled, kernels::kernelContext(false));
  EXPECT_EQ(pc.kind, Kind::Wavefront) << pc.reason;
  EXPECT_EQ(pc.depth, 2u);
  EXPECT_EQ(pc.grainDepth(), 3u);
  EXPECT_GT(pc.pairsTotal, 0u);
  EXPECT_EQ(pc.pairsProven, pc.pairsTotal);
  EXPECT_EQ(pc.str(), "wavefront(d=2)");

  kernels::KernelBundle jac = kernels::buildKernel("jacobi", {8});
  ParallelPlan pj =
      deriveParallelPlan(jac.tiled, kernels::kernelContext(true));
  EXPECT_EQ(pj.kind, Kind::Wavefront) << pj.reason;
  EXPECT_EQ(pj.depth, 1u);
  EXPECT_EQ(pj.grainDepth(), 2u);
  EXPECT_EQ(pj.pairsProven, pj.pairsTotal);

  for (const char* name : {"lu", "qr"}) {
    kernels::KernelBundle b = kernels::buildKernel(name, {8});
    ParallelPlan p =
        deriveParallelPlan(b.tiled, kernels::kernelContext(false));
    EXPECT_EQ(p.kind, Kind::Serial) << name;
    EXPECT_FALSE(p.legal()) << name;
    EXPECT_FALSE(p.reason.empty()) << name;
    EXPECT_EQ(p.str(), "serial") << name;
  }
}

TEST(ParallelPlan, ProvablyDisjointLoopIsParallel) {
  // Positive control for the prover: no cross-iteration access at all.
  using namespace fixfuse::ir;
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {aassign("A", {iv("i")}, add(load("B", {iv("i")}), fc(1.0)))})});
  ParallelPlan plan = deriveParallelPlan(p, simpleCtx());
  EXPECT_EQ(plan.kind, Kind::ParallelLoop) << plan.reason;
  EXPECT_EQ(plan.depth, 1u);
  EXPECT_EQ(plan.frontier, nullptr);
  EXPECT_EQ(plan.pairsProven, plan.pairsTotal);
}

TEST(ParallelPlan, UnprovenDisjointnessStaysSerial) {
  using namespace fixfuse::ir;
  // (1) A genuine loop-carried flow dependence: A(i) = A(i-1) * 0.5.
  {
    Program p;
    p.params = {"N"};
    p.declareArray("A", {add(iv("N"), ic(2))});
    p.body = blockS(
        {loopS("i", ic(1), iv("N"),
               {aassign("A", {iv("i")},
                        mul(load("A", {add(iv("i"), ic(-1))}), fc(0.5)))})});
    ParallelPlan plan = deriveParallelPlan(p, simpleCtx());
    EXPECT_EQ(plan.kind, Kind::Serial) << plan.str();
    EXPECT_FALSE(plan.reason.empty());
  }
  // (2) A non-affine subscript: A(i*i). The polyhedral layer cannot
  // model it, so the pair is unprovable and the safe answer is serial -
  // even though the squares are in fact pairwise distinct.
  {
    Program p;
    p.params = {"N"};
    p.declareArray("A", {mul(add(iv("N"), ic(1)), add(iv("N"), ic(1)))});
    p.body = blockS(
        {loopS("i", ic(1), iv("N"),
               {aassign("A", {mul(iv("i"), iv("i"))},
                        add(load("A", {mul(iv("i"), iv("i"))}), fc(1.0)))})});
    ParallelPlan plan = deriveParallelPlan(p, simpleCtx());
    EXPECT_EQ(plan.kind, Kind::Serial) << plan.str();
  }
  // (3) A scalar reduction: s is read before written in every grain, so
  // it is not privatizable and the nest must stay serial.
  {
    Program p;
    p.params = {"N"};
    p.declareArray("A", {add(iv("N"), ic(2))});
    p.declareScalar("s", Type::Float);
    p.body = blockS(
        {sassign("s", fc(0.0)),
         loopS("i", ic(1), iv("N"),
               {sassign("s", add(sloadf("s"), load("A", {iv("i")}))),
                aassign("A", {iv("i")}, sloadf("s"))})});
    ParallelPlan plan = deriveParallelPlan(p, simpleCtx());
    EXPECT_EQ(plan.kind, Kind::Serial) << plan.str();
  }
}

TEST(ParallelPlan, GatherPlansTakeTheSafeDirection) {
  // Indirect (IdxLoad) subscripts are non-affine: any conflict pair
  // touching one is unprovable and must be treated as a real
  // dependence. In the UNFUSED two-nest chain the chosen nest only
  // writes Y[i] (affine, disjoint) and the gather reads arrays never
  // written inside that nest, so ParallelLoop over it is a sound,
  // proven claim - the other nest runs as serial pre/post. In the
  // inspector-FUSED nest the gathered read Y[col[i][k]] conflicts with
  // the affine write Y[i] inside one loop, the pair is unprovable, and
  // the plan must come back Serial with a reason. (The inspector's
  // concrete proof covers *fusion* legality only; it says nothing about
  // cross-iteration disjointness.)
  for (std::uint64_t seed : {1ull, 2ull}) {
    tests::IndirectProgram ip = tests::randomIndirectProgram(seed);
    poly::ParamContext ctx;
    ctx.addParam("N", 2, 100000);
    ctx.addParam("K", 1, 1024);
    ParallelPlan plan = deriveParallelPlan(ip.prog, ctx);
    EXPECT_EQ(plan.kind, Kind::ParallelLoop) << plan.str();
    EXPECT_EQ(plan.pairsProven, plan.pairsTotal);
    if (ip.triangular) {
      ParallelPlan fusedPlan =
          deriveParallelPlan(deps::fuseTopLevelNests(ip.prog), ctx);
      EXPECT_EQ(fusedPlan.kind, Kind::Serial) << fusedPlan.str();
      EXPECT_FALSE(fusedPlan.reason.empty());
    }
  }
}

TEST(ParallelExec, GatherProgramParallelMatchesSerial) {
  // The unfused gather chain's proven ParallelLoop plan must execute
  // bitwise-equal to serial native (index arrays and values identical).
  SKIP_WITHOUT_HOST_CC();
  for (std::uint64_t seed : {1ull, 2ull}) {
    tests::IndirectProgram ip = tests::randomIndirectProgram(seed);
    poly::ParamContext ctx;
    ctx.addParam("N", 2, 100000);
    ctx.addParam("K", 1, 1024);
    ParallelPlan plan = deriveParallelPlan(ip.prog, ctx);
    ASSERT_EQ(plan.kind, Kind::ParallelLoop) << plan.str();
    auto init = [&ip, seed](interp::Machine& m) {
      tests::initIndirectArrays(m, ip.bindings, seed);
    };
    expectParallelMatchesSerial(ip.prog, plan, ip.bindings.params, init,
                                "indirect seed " + std::to_string(seed));
  }
}

TEST(ParallelPlan, WaveTableIsAValidSchedule) {
  // Reference wave tables for the two parallel kernels: waveIds
  // nondecreasing from 0, every row binding grainDepth vals, and within
  // a wave the grain tuples strictly ascending (deterministic order).
  for (const char* name : {"cholesky", "jacobi"}) {
    const bool jac = std::string(name) == "jacobi";
    kernels::KernelBundle b = kernels::buildKernel(name, {8});
    ParallelPlan plan =
        deriveParallelPlan(b.tiled, kernels::kernelContext(jac));
    ASSERT_TRUE(plan.legal()) << name << ": " << plan.reason;
    std::map<std::string, std::int64_t> params{{"N", 24}};
    if (jac) params["M"] = 5;
    WaveTable wt = computeWaveTable(b.tiled, plan, params);
    ASSERT_EQ(wt.grainDepth, plan.grainDepth()) << name;
    const std::size_t stride = 1 + wt.grainDepth;
    ASSERT_GT(wt.rowCount(), 0u) << name;
    EXPECT_EQ(wt.rows.size(), wt.rowCount() * stride) << name;
    EXPECT_EQ(wt.rows[0], 0) << name;  // first wave is wave 0
    std::int64_t prevWave = 0;
    for (std::size_t r = 1; r < wt.rowCount(); ++r) {
      const std::int64_t w = wt.rows[r * stride];
      EXPECT_GE(w, prevWave) << name << " row " << r;
      EXPECT_LE(w, prevWave + 1) << name << " row " << r;  // no gaps
      if (w == prevWave) {
        // Same wave: strictly ascending grain tuples.
        std::vector<std::int64_t> a(wt.rows.begin() + (r - 1) * stride + 1,
                                    wt.rows.begin() + r * stride);
        std::vector<std::int64_t> c(wt.rows.begin() + r * stride + 1,
                                    wt.rows.begin() + (r + 1) * stride);
        EXPECT_LT(a, c) << name << " row " << r;
      }
      prevWave = w;
    }
    EXPECT_EQ(wt.waveCount(), static_cast<std::size_t>(prevWave) + 1) << name;
  }
}

TEST(ParallelPlan, EmittedWaveTableMatchesReference) {
  // The compiled `<fn>_wave_table` symbol must reproduce the C++
  // reference schedule exactly - same rows, same order - at every
  // parameter binding.
  SKIP_WITHOUT_HOST_CC();
  for (const char* name : {"cholesky", "jacobi"}) {
    const bool jac = std::string(name) == "jacobi";
    kernels::KernelBundle b = kernels::buildKernel(name, {8});
    ParallelPlan plan =
        deriveParallelPlan(b.tiled, kernels::kernelContext(jac));
    ASSERT_TRUE(plan.legal()) << name << ": " << plan.reason;
    auto module = NativeModule::compileParallel(b.tiled, plan);
    ASSERT_NE(module, nullptr) << name;
    ASSERT_TRUE(module->parallel()) << name;
    EXPECT_EQ(module->grainDepth(), plan.grainDepth()) << name;
    for (std::int64_t n : {9, 16, 24}) {
      std::map<std::string, std::int64_t> params{{"N", n}};
      std::vector<std::int64_t> binding;
      for (const auto& prm : b.tiled.params) {
        if (params.count(prm) == 0) params[prm] = 4;  // Jacobi's M
        binding.push_back(params[prm]);
      }
      WaveTable ref = computeWaveTable(b.tiled, plan, params);
      std::vector<std::int64_t> got = module->waveTableRows(binding);
      EXPECT_EQ(got, ref.rows) << name << " N=" << n;
    }
  }
}

TEST(ParallelExec, KernelsBitwiseEqualToSerialNative) {
  SKIP_WITHOUT_HOST_CC();
  for (const char* name : {"cholesky", "jacobi"}) {
    const bool jac = std::string(name) == "jacobi";
    kernels::KernelBundle b = kernels::buildKernel(name, {8});
    ParallelPlan plan =
        deriveParallelPlan(b.tiled, kernels::kernelContext(jac));
    std::map<std::string, std::int64_t> params{{"N", 23}};
    if (jac) params["M"] = 6;
    kernels::native::Matrix a0 =
        jac ? kernels::native::randomMatrix(23, 11, 0.5, 1.5)
            : kernels::native::spdMatrix(23, 11);
    auto init = [&a0](interp::Machine& m) {
      if (m.hasArray("A")) m.array("A").data() = a0;
    };
    expectParallelMatchesSerial(b.tiled, plan, params, init, name);
  }
}

TEST(ParallelExec, FuzzSystemsDifferentialAndSoundness) {
  // The FixDeps fuzz corpus through the engine: every accepted system
  // gets a parallel plan derived as part of its cached compile. Legal
  // plans must execute bitwise-equal to serial native; systems whose
  // disjointness the prover cannot establish must come back Serial.
  SKIP_WITHOUT_HOST_CC();
  engine::Engine eng(/*cacheBound=*/64);
  std::size_t legal = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    tests::FuzzSystem fz = tests::randomSystem(seed);
    std::optional<engine::CompiledProgram> cpOpt;
    try {
      cpOpt.emplace(eng.compileSystem(fz.sys));
    } catch (const UnsupportedError&) {
      continue;  // fixed-or-rejected-loudly: rejection is a sound answer
    }
    const engine::CompiledProgram& cp = *cpOpt;
    const ParallelPlan& plan = cp.plan().tile.parallel;
    if (!plan.legal()) {
      EXPECT_FALSE(plan.reason.empty()) << "seed " << seed;
      continue;
    }
    ++legal;
    EXPECT_EQ(plan.pairsProven, plan.pairsTotal) << "seed " << seed;
    auto init = [seed](interp::Machine& m) {
      tests::initFuzzArrays(m, seed, 91, 16);
    };
    expectParallelMatchesSerial(cp.tiled(), plan, {{"N", 16}}, init,
                                "fuzz seed " + std::to_string(seed));
  }
  // The corpus is deterministic: some seeds are provably disjoint and
  // must stay that way (a prover regression would zero this out).
  EXPECT_GE(legal, 2u);
}

TEST(ParallelExec, EngineRunNativeHonorsFixfuseParallel) {
  // End to end through the engine front door: FIXFUSE_PARALLEL=N runs
  // the cached program's wave schedule on N workers (verified), =0 runs
  // serial native, and a serial-plan program under FIXFUSE_PARALLEL
  // degrades to serial native rather than failing.
  SKIP_WITHOUT_HOST_CC();
  kernels::KernelBundle b = kernels::buildKernel("cholesky", {8});
  engine::CompiledProgram cp = engine::processEngine().compile(
      b.seq, kernels::kernelContext(false), {/*tile=*/8});
  ASSERT_TRUE(cp.plan().tile.parallel.legal())
      << cp.plan().tile.parallel.reason;
  kernels::native::Matrix a0 = kernels::native::spdMatrix(20, 5);
  auto init = [&a0](interp::Machine& m) { m.array("A").data() = a0; };

  ::setenv("FIXFUSE_PARALLEL", "3", 1);
  pipeline::NativeRunReport rp;
  interp::Machine mp = cp.runNative({{"N", 20}}, init, &rp);
  EXPECT_EQ(rp.backend, "parallel-native");
  EXPECT_TRUE(rp.verified);
  EXPECT_EQ(rp.workers, 3u);

  ::setenv("FIXFUSE_PARALLEL", "0", 1);
  pipeline::NativeRunReport rs;
  interp::Machine ms = cp.runNative({{"N", 20}}, init, &rs);
  EXPECT_EQ(rs.backend, "native");
  EXPECT_TRUE(rs.verified);
  std::string where;
  EXPECT_TRUE(
      interp::machineStateBitwiseEqual(cp.tiled(), mp, ms, &where))
      << where;

  // A serial plan under FIXFUSE_PARALLEL: graceful serial fallback.
  ::setenv("FIXFUSE_PARALLEL", "3", 1);
  kernels::KernelBundle lu = kernels::buildKernel("lu", {8});
  engine::CompiledProgram cpLu = engine::processEngine().compile(
      lu.seq, kernels::kernelContext(false), {/*tile=*/8});
  ASSERT_FALSE(cpLu.plan().tile.parallel.legal());
  kernels::native::Matrix l0 = kernels::native::randomMatrix(16, 3, 0.5, 1.5);
  pipeline::NativeRunReport rl;
  cpLu.runNative(
      {{"N", 16}},
      [&l0](interp::Machine& m) { m.array("A").data() = l0; }, &rl);
  EXPECT_EQ(rl.backend, "native");
  EXPECT_TRUE(rl.verified);
  ::unsetenv("FIXFUSE_PARALLEL");
}

}  // namespace
}  // namespace fixfuse::codegen
