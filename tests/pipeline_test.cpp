// PassManager behaviour: composition and snapshots, per-pass
// verification (a corrupted "preserving" pass must throw
// VerificationError naming the pass; a declared non-preserving pass must
// not), instrumentation (pass names, IR counts, dependence-query deltas),
// runOnSystem, and the memoizing dependence cache's hit behaviour.
#include <gtest/gtest.h>

#include <map>

#include "deps/analysis.h"
#include "deps/cache.h"
#include "interp/interp.h"
#include "ir/parse.h"
#include "ir/printer.h"
#include "ir/rewrite.h"
#include "pipeline/manager.h"

namespace fixfuse::pipeline {
namespace {

// The textual_pipeline example's nest: a genuine fusion-preventing flow
// dependence (the second inner loop consumes R(i+1), produced later in
// the same k iteration), so FixDeps has real work and real dep queries.
const char* kInput = R"(
program(N) {
  double R[(N + 4)];
  double S[(N + 4)];
  for k = 1 .. N {
    for i = 1 .. N {
      R[i] = (R[i] + (0.5 * S[i]));
    }
    for i = 1 .. N {
      S[i] = (S[i] + R[min((i + 1), N)]);
    }
  }
}
)";

// Same program with one constant changed - not bit-for-bit equivalent.
const char* kCorrupted = R"(
program(N) {
  double R[(N + 4)];
  double S[(N + 4)];
  for k = 1 .. N {
    for i = 1 .. N {
      R[i] = (R[i] + (0.625 * S[i]));
    }
    for i = 1 .. N {
      S[i] = (S[i] + R[min((i + 1), N)]);
    }
  }
}
)";

poly::ParamContext makeCtx() {
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 1000000);
  return ctx;
}

VerifyOptions makeVerify() {
  VerifyOptions vo;
  vo.enabled = true;
  vo.paramSets = {{{"N", 10}}, {{"N", 13}}};
  vo.init = [](interp::Machine& m,
               const std::map<std::string, std::int64_t>&) {
    double x = 0.05;
    for (auto& v : m.array("R").data()) v = (x += 0.13);
    for (auto& v : m.array("S").data()) v = (x -= 0.07);
  };
  return vo;
}

TEST(PassManagerTest, ComposesPassesAndTakesSnapshots) {
  ir::Program input = ir::parseProgram(kInput);
  ir::Program presink;

  PassManager pm(makeCtx());
  pm.verifyWith(makeVerify());
  pm.add(sinkPass())
      .add(snapshotPass("presink", &presink))
      .add(fixDepsPass());
  PipelineState st = pm.run(input);

  // sink and snapshot leave the program untouched; fixdeps regenerates.
  EXPECT_EQ(ir::printProgram(presink), ir::printProgram(input));
  EXPECT_NE(ir::printProgram(st.program), ir::printProgram(input));
  ASSERT_TRUE(st.system.has_value());
  EXPECT_FALSE(st.fixLog.tiles.empty());

  const PipelineStats& stats = pm.stats();
  ASSERT_EQ(stats.passes.size(), 3u);
  EXPECT_EQ(stats.passes[0].pass, "sink");
  EXPECT_EQ(stats.passes[1].pass, "snapshot(presink)");
  EXPECT_EQ(stats.passes[2].pass, "fixdeps");

  // Verification ran only where the text changed: sink/snapshot are
  // no-ops on the program, fixdeps is not.
  EXPECT_FALSE(stats.passes[0].verified);
  EXPECT_FALSE(stats.passes[1].verified);
  EXPECT_TRUE(stats.passes[2].verified);

  // Instrumentation: fixdeps issued dependence queries and polyhedral
  // work; IR counts track the regenerated program.
  EXPECT_GT(stats.passes[2].depQueries, 0u);
  EXPECT_GT(stats.passes[2].emptinessChecks, 0u);
  EXPECT_GT(stats.passes[2].stmtsAfter, 0u);
  EXPECT_EQ(stats.passes[0].stmtsBefore, stats.passes[0].stmtsAfter);
  EXPECT_EQ(stats.totalDepQueries(), stats.passes[2].depQueries);
}

TEST(PassManagerTest, VerificationErrorNamesTheOffendingPass) {
  ir::Program input = ir::parseProgram(kInput);

  PassManager pm(makeCtx());
  pm.verifyWith(makeVerify());
  // A pass that claims to preserve semantics but does not.
  pm.add(customPass(
      "corrupt",
      [](PipelineState& st) { st.program = ir::parseProgram(kCorrupted); },
      /*preservesSemantics=*/true));

  try {
    pm.run(input);
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& e) {
    EXPECT_EQ(e.pass(), "corrupt");
    EXPECT_EQ(e.array(), "R");
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos);
  }
}

TEST(PassManagerTest, NonPreservingPassesAreNotChecked) {
  ir::Program input = ir::parseProgram(kInput);

  PassManager pm(makeCtx());
  pm.verifyWith(makeVerify());
  // The same corruption declared non-preserving: the verifier must skip
  // it (this is how raw fusion before FixDeps runs under verification).
  pm.add(customPass(
      "corrupt",
      [](PipelineState& st) { st.program = ir::parseProgram(kCorrupted); },
      /*preservesSemantics=*/false));
  EXPECT_NO_THROW(pm.run(input));
  EXPECT_FALSE(pm.stats().passes[0].verified);
}

TEST(PassManagerTest, RawFusionFailsVerificationWhenClaimedPreserving) {
  ir::Program input = ir::parseProgram(kInput);

  PassManager pm(makeCtx());
  pm.verifyWith(makeVerify());
  // Fusing without FixDeps is the paper's broken program; claiming
  // preservation must surface it as a VerificationError on `fuse`.
  pm.add(sinkPass()).add(fusePass({}, /*preserves=*/true));
  try {
    pm.run(input);
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& e) {
    EXPECT_EQ(e.pass(), "fuse");
  }
}

// Two 1-D nests built directly (the fuzz drivers' route, no source
// program): nest 1 reads A(i+1), which nest 0 writes on a later fused
// iteration - a violated flow dependence FixDeps must tile away.
deps::NestSystem makeHandBuiltSystem() {
  using namespace fixfuse::ir;
  constexpr std::int64_t kPad = 4;
  deps::NestSystem sys;
  sys.ctx.addParam("N", kPad, 100000);
  sys.decls.params = {"N"};
  for (const char* a : {"A", "B"})
    sys.decls.declareArray(a, {add(iv("N"), ic(2 * kPad))});
  sys.decls.body = blockS({});
  sys.isVars = {"i"};
  sys.isBounds = {{poly::AffineExpr(kPad), poly::AffineExpr::var("N")}};

  auto makeNest = [&](StmtPtr stmt) {
    deps::PerfectNest nest;
    nest.vars = {"i"};
    nest.domain = poly::IntegerSet({"i"});
    nest.domain.addRange("i", poly::AffineExpr(kPad),
                         poly::AffineExpr::var("N"));
    nest.body = blockS({std::move(stmt)});
    nest.embed = deps::AffineMap{{poly::AffineExpr::var("i")}};
    sys.nests.push_back(std::move(nest));
  };
  makeNest(aassign("A", {iv("i")}, mul(load("A", {iv("i")}), fc(0.5))));
  makeNest(aassign("B", {iv("i")},
                   add(load("B", {iv("i")}),
                       load("A", {add(iv("i"), ic(1))}))));
  int id = 0;
  for (auto& nest : sys.nests)
    forEachStmt(*nest.body, [&](const Stmt& s) {
      if (s.kind() == StmtKind::Assign)
        const_cast<Stmt&>(s).setAssignId(id++);
    });
  return sys;
}

TEST(PassManagerTest, RunOnSystemUsesSequentialReference) {
  deps::NestSystem sys = makeHandBuiltSystem();

  VerifyOptions vo;
  vo.enabled = true;
  vo.paramSets = {{{"N", 10}}, {{"N", 13}}};
  vo.init = [](interp::Machine& m,
               const std::map<std::string, std::int64_t>&) {
    double x = 0.2;
    for (const char* name : {"A", "B"})
      for (auto& v : m.array(name).data()) v = (x += 0.31);
  };

  PassManager pm(sys.ctx);
  pm.verifyWith(vo);
  pm.add(fixDepsPass());
  PipelineState st = pm.runOnSystem(std::move(sys));

  ASSERT_EQ(pm.stats().passes.size(), 1u);
  EXPECT_EQ(pm.stats().passes[0].pass, "fixdeps");
  EXPECT_TRUE(pm.stats().passes[0].verified);
  EXPECT_FALSE(st.fixLog.tiles.empty());
}

TEST(PassManagerTest, StatsRenderJsonAndTable) {
  ir::Program input = ir::parseProgram(kInput);
  PassManager pm(makeCtx());
  pm.add(sinkPass()).add(fixDepsPass());
  pm.run(input);

  const std::string json = pm.stats().json().str();
  for (const char* key :
       {"\"passes\"", "\"pass\"", "\"dep_queries\"", "\"dep_cache_hits\"",
        "\"totals\"", "\"dep_cache_hit_rate\"", "\"fix_log\"", "\"tiles\"",
        "\"copies\"", "\"interp_backend\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;

  const std::string table = pm.stats().str();
  EXPECT_NE(table.find("fixdeps"), std::string::npos);
  EXPECT_NE(table.find("cache hits"), std::string::npos);
}

TEST(DepCacheTest, RepeatedQueriesHitTheCache) {
  // Build a real system, then issue the same W(k) computation twice: the
  // second round must be answered entirely from the cache.
  ir::Program input = ir::parseProgram(kInput);
  PassManager sinkPm(makeCtx());
  sinkPm.add(sinkPass());
  PipelineState sunk = sinkPm.run(input);
  ASSERT_TRUE(sunk.system.has_value());
  const deps::NestSystem& sys = *sunk.system;

  deps::depCacheClear();
  const deps::DepCacheStats t0 = deps::depCacheThreadStats();
  deps::WSet w1 = deps::computeW(sys, 0);
  const deps::DepCacheStats t1 = deps::depCacheThreadStats();
  deps::WSet w2 = deps::computeW(sys, 0);
  const deps::DepCacheStats t2 = deps::depCacheThreadStats();

  const std::uint64_t firstQueries = t1.queries - t0.queries;
  const std::uint64_t secondQueries = t2.queries - t1.queries;
  const std::uint64_t secondHits = t2.hits - t1.hits;
  ASSERT_GT(firstQueries, 0u);
  EXPECT_EQ(secondQueries, firstQueries);
  EXPECT_EQ(secondHits, secondQueries);  // identical query -> pure hits
  EXPECT_EQ(w1.entries.size(), w2.entries.size());

  // Clearing drops the entries: the same query misses again.
  deps::depCacheClear();
  const deps::DepCacheStats t3 = deps::depCacheThreadStats();
  deps::computeW(sys, 0);
  const deps::DepCacheStats t4 = deps::depCacheThreadStats();
  EXPECT_LT(t4.hits - t3.hits, t4.queries - t3.queries);
}

TEST(DepCacheTest, DeclsChangeMissesInsteadOfStaleHit) {
  // Two systems with identical nests but different declarations (here:
  // one array extent changed, as if the caller retargeted the program)
  // must not share cache entries - the fingerprint covers sys.decls.
  // Before the decls were fingerprinted, the second round below was
  // answered with the first system's (stale) entries.
  ir::Program input = ir::parseProgram(kInput);
  PassManager sinkPm(makeCtx());
  sinkPm.add(sinkPass());
  PipelineState sunk = sinkPm.run(input);
  ASSERT_TRUE(sunk.system.has_value());
  const deps::NestSystem& sys = *sunk.system;

  deps::NestSystem other = sys;
  ASSERT_FALSE(other.decls.arrays.empty());
  ASSERT_FALSE(other.decls.arrays[0].extents.empty());
  other.decls.arrays[0].extents[0] = ir::add(
      other.decls.arrays[0].extents[0], ir::ic(1));

  deps::depCacheClear();
  const deps::DepCacheStats t0 = deps::depCacheThreadStats();
  deps::computeW(sys, 0);
  const deps::DepCacheStats t1 = deps::depCacheThreadStats();
  deps::computeW(other, 0);
  const deps::DepCacheStats t2 = deps::depCacheThreadStats();

  const std::uint64_t firstQueries = t1.queries - t0.queries;
  ASSERT_GT(firstQueries, 0u);
  EXPECT_EQ(t2.queries - t1.queries, firstQueries);
  EXPECT_EQ(t2.hits - t1.hits, 0u);  // different decls -> no stale hits

  // The unmodified system still hits its own entries.
  const deps::DepCacheStats t3 = deps::depCacheThreadStats();
  deps::computeW(sys, 0);
  const deps::DepCacheStats t4 = deps::depCacheThreadStats();
  EXPECT_EQ(t4.hits - t3.hits, t4.queries - t3.queries);
}

}  // namespace
}  // namespace fixfuse::pipeline
