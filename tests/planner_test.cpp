// Differential suite for planner::planProgram: the plan derived from
// each paper kernel must equal the historical hand-written pipeline
// configuration *exactly* - strategy, peel, placement and bound
// overrides, scalarisation, FixDeps outcome, pass sequence, and the
// emitted C of the fixed program (checked against the same goldens the
// hand-written drivers produced). The hand-written sequences are the
// oracle: any planner drift shows up as a readable field diff here
// before it shows up as a golden or stdout diff elsewhere.
//
// The fuzz sweep reuses the FixDeps corpus as a planner corpus: every
// random system is planned (planSystem) and repaired, and must end
// fixed-and-verified or rejected loudly with UnsupportedError - never
// silently mis-compiled (that would surface as VerificationError and
// fail the test). Runs under whichever FIXFUSE_INTERP backend the
// environment selects; CI exercises tree, bytecode and native.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "codegen/emit_c.h"
#include "fuzz_systems.h"
#include "kernels/common.h"
#include "pipeline/manager.h"
#include "planner/planner.h"
#include "support/error.h"

namespace fixfuse::planner {
namespace {

using kernels::KernelBundle;
using kernels::buildKernel;
using poly::AffineExpr;

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> passNames(const pipeline::PipelineStats& stats) {
  std::vector<std::string> names;
  for (const auto& p : stats.passes) names.push_back(p.pass);
  return names;
}

void checkFixedGolden(const KernelBundle& b) {
  const std::string want =
      readFile(std::string(FIXFUSE_TEST_DIR) + "/golden/" + b.name +
               "_fixed.c");
  ASSERT_FALSE(want.empty()) << "missing golden for " << b.name;
  EXPECT_EQ(codegen::emitC(b.fixed, {b.name + "_fixed", /*standalone=*/true}),
            want)
      << "planner-driven fixed " << b.name << " drifted from the golden";
}

TEST(PlannerDifferential, CholeskyMatchesHandWrittenConfig) {
  KernelBundle b = buildKernel("cholesky", {/*tile=*/0});
  const Plan& p = b.plan;
  EXPECT_EQ(p.strategy, "peel");
  ASSERT_TRUE(p.peelVar.has_value());
  EXPECT_EQ(*p.peelVar, "k");
  EXPECT_TRUE(p.splitEpilogue);
  // Placement is all-default; the only divergence is the fused i bound
  // j..N (the update nest's own range, tighter than the dominating k+1).
  EXPECT_TRUE(p.sink.dimOverrides.empty());
  ASSERT_EQ(p.sink.isBoundOverrides.size(), 1u);
  ASSERT_TRUE(p.sink.isBoundOverrides.count(2));
  EXPECT_TRUE(p.sink.isBoundOverrides.at(2).first == AffineExpr::var("j"));
  EXPECT_TRUE(p.sink.isBoundOverrides.at(2).second == AffineExpr::var("N"));
  EXPECT_TRUE(p.scalarize.empty());
  // "The fused program for Cholesky is already legal": FixDeps must
  // verifiably do nothing.
  EXPECT_TRUE(b.fixLog.tiles.empty());
  EXPECT_TRUE(b.fixLog.copies.empty());
  EXPECT_EQ(p.tile.kind, TilePlan::Kind::StripMineOuter);
  EXPECT_EQ(p.tile.stripVar, "k");
  EXPECT_GT(p.tile.suggestedTile, 0);
  EXPECT_EQ(passNames(b.stats),
            (std::vector<std::string>{"peel(k)", "sink", "fuse",
                                      "snapshot(fused)", "fixdeps",
                                      "snapshot(fixed)"}));
  checkFixedGolden(b);
}

TEST(PlannerDifferential, LuMatchesHandWrittenConfig) {
  KernelBundle b = buildKernel("lu", {/*tile=*/0});
  const Plan& p = b.plan;
  EXPECT_EQ(p.strategy, "peel");
  ASSERT_TRUE(p.peelVar.has_value());
  EXPECT_EQ(*p.peelVar, "k");
  EXPECT_TRUE(p.splitEpilogue);
  // The swap nest's j maps onto the fused *i* dimension (dim 2) - the
  // paper's Fig. 3a placement; bounds are the tight defaults.
  ASSERT_EQ(p.sink.dimOverrides.size(), 1u);
  ASSERT_TRUE(p.sink.dimOverrides.count(2));
  EXPECT_EQ(p.sink.dimOverrides.at(2),
            (std::map<std::string, std::size_t>{{"j", 2}}));
  EXPECT_TRUE(p.sink.isBoundOverrides.empty());
  EXPECT_TRUE(p.scalarize.empty());
  // One Full tile on the pivot-search nest (the paper's "tile size N").
  ASSERT_EQ(b.fixLog.tiles.size(), 1u);
  EXPECT_TRUE(b.fixLog.copies.empty());
  EXPECT_EQ(p.tile.kind, TilePlan::Kind::Rectangular);
  EXPECT_EQ(p.tile.rectDims, 2u);
  EXPECT_EQ(passNames(b.stats),
            (std::vector<std::string>{"peel(k)", "sink", "fuse",
                                      "snapshot(fused)", "fixdeps",
                                      "snapshot(fixed)"}));
  checkFixedGolden(b);
}

TEST(PlannerDifferential, QrMatchesHandWrittenConfig) {
  KernelBundle b = buildKernel("qr", {/*tile=*/0});
  const Plan& p = b.plan;
  // QR's two deepest nests tie, so the chain skips peel and relaxes the
  // failing fused j lower bound i+1 -> i (the paper's Fig. 3b widening).
  EXPECT_EQ(p.strategy, "relax-bounds");
  EXPECT_FALSE(p.peelVar.has_value());
  EXPECT_TRUE(p.splitEpilogue);
  EXPECT_GE(p.boundRelaxations, 1u);
  // The norm accumulation's j maps onto the fused k dimension (dim 2).
  ASSERT_EQ(p.sink.dimOverrides.size(), 1u);
  ASSERT_TRUE(p.sink.dimOverrides.count(1));
  EXPECT_EQ(p.sink.dimOverrides.at(1),
            (std::map<std::string, std::size_t>{{"j", 2}}));
  ASSERT_EQ(p.sink.isBoundOverrides.size(), 1u);
  ASSERT_TRUE(p.sink.isBoundOverrides.count(1));
  EXPECT_TRUE(p.sink.isBoundOverrides.at(1).first == AffineExpr::var("i"));
  EXPECT_TRUE(p.sink.isBoundOverrides.at(1).second == AffineExpr::var("N"));
  EXPECT_TRUE(p.scalarize.empty());
  // Full-tiled norm accumulation plus the two consumed-ahead nests.
  EXPECT_EQ(b.fixLog.tiles.size(), 3u);
  EXPECT_TRUE(b.fixLog.copies.empty());
  EXPECT_EQ(p.tile.kind, TilePlan::Kind::Rectangular);
  EXPECT_EQ(p.tile.rectDims, 2u);
  EXPECT_EQ(passNames(b.stats),
            (std::vector<std::string>{"sink", "fuse", "snapshot(fused)",
                                      "fixdeps", "snapshot(fixed)"}));
  checkFixedGolden(b);
}

TEST(PlannerDifferential, JacobiMatchesHandWrittenConfig) {
  KernelBundle b = buildKernel("jacobi", {/*tile=*/0});
  const Plan& p = b.plan;
  // Both sweeps map cleanly: no peel, no overrides, no epilogue split.
  EXPECT_EQ(p.strategy, "fuse");
  EXPECT_FALSE(p.peelVar.has_value());
  EXPECT_FALSE(p.splitEpilogue);
  EXPECT_TRUE(p.sink.dimOverrides.empty());
  EXPECT_TRUE(p.sink.isBoundOverrides.empty());
  // The temporary L is proven block-local and scalarised (Fig. 4d).
  EXPECT_EQ(p.scalarize,
            (std::vector<std::pair<std::string, std::string>>{{"L", "l"}}));
  // One copy repair on A, introducing H_A_1 (Fig. 4d's H).
  EXPECT_TRUE(b.fixLog.tiles.empty());
  ASSERT_EQ(b.fixLog.copies.size(), 1u);
  EXPECT_EQ(b.fixLog.copies[0].array, "A");
  EXPECT_EQ(b.fixLog.copies[0].copyArray, "H_A_1");
  // Copy repair => skewable stencil: skew all three dims, time innermost.
  EXPECT_EQ(p.tile.kind, TilePlan::Kind::SkewAndTile);
  EXPECT_EQ(p.tile.skewVars.size(), 3u);
  EXPECT_EQ(passNames(b.stats),
            (std::vector<std::string>{"sink", "fuse", "snapshot(fused)",
                                      "fixdeps", "scalarize(L)",
                                      "snapshot(fixed)"}));
  checkFixedGolden(b);
}

TEST(PlannerFuzz, RandomSystemsPlannedFixedOrRejectedLoudly) {
  // The FixDeps fuzz corpus, planned first: planSystem's violation
  // profile must agree with what the repair pass then actually does,
  // and every system ends fixed-and-verified or rejected loudly.
  int fixed = 0, rejected = 0, alreadyLegal = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    tests::FuzzSystem fz = tests::randomSystem(seed);
    const SystemPlan sp = planSystem(fz.sys);

    pipeline::PassManager pm(fz.sys.ctx);
    pm.verifyWith(tests::fuzzVerify(
        seed, 77, {static_cast<std::int64_t>(tests::kPad + 1), 13, 20}));
    pm.add(pipeline::fixDepsPass());
    pipeline::PipelineState st;
    try {
      st = pm.runOnSystem(fz.sys);
    } catch (const UnsupportedError&) {
      // Loud rejection is acceptable - but only for systems the plan
      // said need repair; a clean plan must never be rejected.
      EXPECT_TRUE(sp.needsRepair()) << "seed " << seed;
      ++rejected;
      continue;
    }
    const bool acted =
        !st.fixLog.tiles.empty() || !st.fixLog.copies.empty();
    if (acted) {
      ++fixed;
      // FixDeps only acts on violations the plan saw.
      EXPECT_TRUE(sp.needsRepair()) << "seed " << seed;
    } else {
      ++alreadyLegal;
    }
    EXPECT_TRUE(pm.stats().passes[0].verified) << "seed " << seed;
  }
  EXPECT_GE(fixed + alreadyLegal, 90) << "fixed=" << fixed
                                      << " legal=" << alreadyLegal
                                      << " rejected=" << rejected;
  EXPECT_GE(fixed, 20);
}

TEST(PlannerRejection, UnfusableProgramThrowsUnsupported) {
  // A program with no top-level loop has nothing to fuse: the planner
  // must reject loudly, never emit a partial plan.
  ir::Program p;
  p.params = {"N"};
  p.declareArray("A", {ir::add(ir::iv("N"), ir::ic(1))});
  p.body = ir::blockS({ir::aassign("A", {ir::ic(1)}, ir::fc(0.0))});
  p.numberAssignments();
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  EXPECT_THROW(planProgram(p, ctx), UnsupportedError);
}

}  // namespace
}  // namespace fixfuse::planner
