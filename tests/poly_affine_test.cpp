// Unit tests for poly::AffineExpr.
#include <gtest/gtest.h>

#include "poly/affine.h"
#include "support/error.h"

namespace fixfuse::poly {
namespace {

TEST(AffineExpr, ConstructionAndAccessors) {
  AffineExpr e = AffineExpr::term(2, "i", 5);
  EXPECT_EQ(e.coeff("i"), 2);
  EXPECT_EQ(e.coeff("j"), 0);
  EXPECT_EQ(e.constant(), 5);
  EXPECT_FALSE(e.isConstant());
  EXPECT_TRUE(AffineExpr(3).isConstant());
  EXPECT_TRUE(e.uses("i"));
  EXPECT_FALSE(e.uses("j"));
}

TEST(AffineExpr, ZeroCoefficientIsPruned) {
  AffineExpr e = AffineExpr::term(0, "i", 1);
  EXPECT_TRUE(e.isConstant());
  AffineExpr f = AffineExpr::var("i") - AffineExpr::var("i");
  EXPECT_TRUE(f.isConstant());
  EXPECT_EQ(f.constant(), 0);
}

TEST(AffineExpr, Arithmetic) {
  AffineExpr i = AffineExpr::var("i");
  AffineExpr j = AffineExpr::var("j");
  AffineExpr e = i * 2 + j - AffineExpr(3);
  EXPECT_EQ(e.coeff("i"), 2);
  EXPECT_EQ(e.coeff("j"), 1);
  EXPECT_EQ(e.constant(), -3);
  AffineExpr neg = -e;
  EXPECT_EQ(neg.coeff("i"), -2);
  EXPECT_EQ(neg.constant(), 3);
}

TEST(AffineExpr, MultiplyByZeroClears) {
  AffineExpr e = AffineExpr::term(3, "i", 7) * 0;
  EXPECT_TRUE(e.isConstant());
  EXPECT_EQ(e.constant(), 0);
}

TEST(AffineExpr, Evaluate) {
  AffineExpr e = AffineExpr::term(2, "i") + AffineExpr::term(-1, "N", 4);
  EXPECT_EQ(e.evaluate({{"i", 3}, {"N", 10}}), 0);
  EXPECT_THROW(e.evaluate({{"i", 3}}), InternalError);
}

TEST(AffineExpr, PartialEvaluate) {
  AffineExpr e = AffineExpr::term(2, "i") + AffineExpr::term(3, "N", 1);
  AffineExpr p = e.partialEvaluate({{"N", 10}});
  EXPECT_EQ(p.coeff("i"), 2);
  EXPECT_EQ(p.coeff("N"), 0);
  EXPECT_EQ(p.constant(), 31);
}

TEST(AffineExpr, Substitute) {
  // e = 2i + j; substitute i := k + 1  =>  2k + j + 2
  AffineExpr e = AffineExpr::term(2, "i") + AffineExpr::var("j");
  AffineExpr r = e.substituted("i", AffineExpr::var("k") + AffineExpr(1));
  EXPECT_EQ(r.coeff("k"), 2);
  EXPECT_EQ(r.coeff("j"), 1);
  EXPECT_EQ(r.coeff("i"), 0);
  EXPECT_EQ(r.constant(), 2);
}

TEST(AffineExpr, SubstituteAbsentVarIsNoop) {
  AffineExpr e = AffineExpr::var("j");
  EXPECT_EQ(e.substituted("i", AffineExpr(5)), e);
}

TEST(AffineExpr, RecursiveSubstituteThrows) {
  AffineExpr e = AffineExpr::var("i");
  EXPECT_THROW(e.substituted("i", AffineExpr::var("i") + AffineExpr(1)),
               InternalError);
}

TEST(AffineExpr, Rename) {
  AffineExpr e = AffineExpr::term(2, "i", 1);
  AffineExpr r = e.renamed("i", "i2");
  EXPECT_EQ(r.coeff("i2"), 2);
  EXPECT_EQ(r.coeff("i"), 0);
}

TEST(AffineExpr, CoeffGcd) {
  EXPECT_EQ((AffineExpr::term(4, "i") + AffineExpr::term(6, "j")).coeffGcd(),
            2);
  EXPECT_EQ(AffineExpr(5).coeffGcd(), 0);
}

TEST(AffineExpr, Variables) {
  AffineExpr e = AffineExpr::var("j") + AffineExpr::var("a");
  EXPECT_EQ(e.variables(), (std::vector<std::string>{"a", "j"}));
}

TEST(AffineExpr, Str) {
  EXPECT_EQ(AffineExpr(0).str(), "0");
  EXPECT_EQ(AffineExpr::var("i").str(), "i");
  EXPECT_EQ((-AffineExpr::var("i")).str(), "-i");
  AffineExpr e = AffineExpr::term(2, "i") - AffineExpr::var("j") + AffineExpr(3);
  EXPECT_EQ(e.str(), "2*i - j + 3");
  AffineExpr f = AffineExpr::var("i") - AffineExpr(4);
  EXPECT_EQ(f.str(), "i - 4");
}

TEST(AffineExpr, EqualityIsStructural) {
  AffineExpr a = AffineExpr::var("i") + AffineExpr(1);
  AffineExpr b = AffineExpr(1) + AffineExpr::var("i");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, AffineExpr::var("i"));
}

}  // namespace
}  // namespace fixfuse::poly
