// Parameterised property tests for the polyhedral layer: randomised
// unit-coefficient systems (where Fourier-Motzkin is provably exact),
// parametric objective bounds, symbolic upper bounds with divisors, and
// PresburgerSet algebra against brute force.
#include <gtest/gtest.h>

#include <set>

#include "poly/presburger.h"
#include "poly/set.h"
#include "support/rng.h"

namespace fixfuse::poly {
namespace {

AffineExpr V(const std::string& n) { return AffineExpr::var(n); }
AffineExpr C(std::int64_t k) { return AffineExpr(k); }

/// Random conjunction with all coefficients in {-1, 0, 1} over x,y,z in
/// a [-5, 5] box - the fragment where FM projection is exact.
IntegerSet randomUnitSystem(SplitMix64& rng) {
  IntegerSet s({"x", "y", "z"});
  s.addRange("x", C(-5), C(5));
  s.addRange("y", C(-5), C(5));
  s.addRange("z", C(-5), C(5));
  for (int c = 0; c < 3; ++c) {
    AffineExpr e = AffineExpr::term(rng.nextInt(-1, 1), "x") +
                   AffineExpr::term(rng.nextInt(-1, 1), "y") +
                   AffineExpr::term(rng.nextInt(-1, 1), "z") +
                   C(rng.nextInt(-4, 4));
    s.addGE(e);
  }
  return s;
}

class UnitSystemProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnitSystemProperty, ProjectionIsExactAndMembershipPreserving) {
  SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    IntegerSet s = randomUnitSystem(rng);
    IntegerSet proj = s.eliminated({"z"});
    EXPECT_TRUE(proj.exact());
    // Brute-force the true projection and compare as point sets.
    std::set<std::pair<std::int64_t, std::int64_t>> truth;
    s.forEachPointAt({}, [&](const std::vector<std::int64_t>& p) {
      truth.insert({p[0], p[1]});
    });
    std::set<std::pair<std::int64_t, std::int64_t>> got;
    proj.forEachPointAt({}, [&](const std::vector<std::int64_t>& p) {
      got.insert({p[0], p[1]});
    });
    EXPECT_EQ(got, truth);
  }
}

TEST_P(UnitSystemProperty, MaxValueMatchesBruteForce) {
  SplitMix64 rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 25; ++trial) {
    IntegerSet s = randomUnitSystem(rng);
    AffineExpr obj = AffineExpr::term(rng.nextInt(-2, 2), "x") +
                     AffineExpr::term(rng.nextInt(-2, 2), "y") +
                     AffineExpr::term(rng.nextInt(-2, 2), "z");
    std::optional<std::int64_t> truth;
    s.forEachPointAt({}, [&](const std::vector<std::int64_t>& p) {
      std::int64_t v = obj.evaluate({{"x", p[0]}, {"y", p[1]}, {"z", p[2]}});
      if (!truth || v > *truth) truth = v;
    });
    auto got = s.maxValueAt(obj, {});
    if (!truth) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->num(), *truth);
      EXPECT_EQ(got->den(), 1);
    }
  }
}

TEST_P(UnitSystemProperty, LexmaxIsMaximalMember) {
  SplitMix64 rng(GetParam() * 97 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    IntegerSet s = randomUnitSystem(rng);
    auto mx = s.lexmaxAt({});
    std::vector<std::int64_t> best;
    s.forEachPointAt({}, [&](const std::vector<std::int64_t>& p) {
      if (best.empty() || std::lexicographical_compare(best.begin(),
                                                       best.end(), p.begin(),
                                                       p.end()))
        best = p;
    });
    if (best.empty())
      EXPECT_FALSE(mx.has_value());
    else
      EXPECT_EQ(*mx, best);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnitSystemProperty,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

// --- parametric bounds -------------------------------------------------------

TEST(ParametricBounds, SymbolicUpperBoundWithDivisor) {
  // { [x] : 0 <= 2x <= N } : max(x) = floor(N/2); the symbolic bound is
  // (N, 2).
  IntegerSet s({"x"});
  s.addGE(AffineExpr::term(2, "x"));
  s.addGE(V("N") - AffineExpr::term(2, "x"));
  auto bounds = s.symbolicUpperBounds(V("x"));
  ASSERT_FALSE(bounds.empty());
  bool found = false;
  for (const auto& [expr, div] : bounds)
    if (expr == V("N") && div == 2) found = true;
  EXPECT_TRUE(found);
  // And the concrete max agrees with floor(N/2).
  for (std::int64_t n : {4, 5, 9}) {
    auto m = s.maxValueAt(V("x"), {{"N", n}});
    ASSERT_TRUE(m);
    EXPECT_EQ(m->num(), n / 2) << n;
  }
}

TEST(ParametricBounds, ProvablyAtMostAcrossContext) {
  // Triangular band: { [i, j] : 1 <= i <= N, i <= j <= i + 3 }.
  IntegerSet s({"i", "j"});
  s.addRange("i", C(1), V("N"));
  s.addRange("j", V("i"), V("i") + C(3));
  ParamContext ctx;
  ctx.addParam("N", 4, 1000000);
  EXPECT_TRUE(s.provablyAtMost(V("j") - V("i"), 3, ctx));
  EXPECT_FALSE(s.provablyAtMost(V("j") - V("i"), 2, ctx));
  // j itself is parameter-dependent: bounded by N + 3, not by any const.
  EXPECT_TRUE(s.provablyAtMost(V("j") - V("N"), 3, ctx));
  EXPECT_FALSE(s.provablyAtMost(V("j"), 100, ctx));
}

// --- PresburgerSet algebra ----------------------------------------------------

TEST(PresburgerAlgebra, UnionIntersectionBruteForce) {
  SplitMix64 rng(5150);
  for (int trial = 0; trial < 30; ++trial) {
    auto randomInterval = [&] {
      IntegerSet s({"x"});
      std::int64_t lo = rng.nextInt(-6, 4);
      s.addRange("x", C(lo), C(lo + rng.nextInt(0, 5)));
      return s;
    };
    PresburgerSet u(randomInterval());
    u.addPiece(randomInterval());
    u.addPiece(randomInterval());
    std::int64_t cut = rng.nextInt(-4, 4);
    PresburgerSet v = u.intersectedWith({Constraint::ge(V("x") - C(cut))});
    // Brute force over the full range.
    std::set<std::int64_t> expectPts;
    for (const auto& piece : u.pieces())
      piece.forEachPointAt({}, [&](const std::vector<std::int64_t>& p) {
        if (p[0] >= cut) expectPts.insert(p[0]);
      });
    std::set<std::int64_t> gotPts;
    for (const auto& p : v.pointsAt({})) gotPts.insert(p[0]);
    EXPECT_EQ(gotPts, expectPts);
  }
}

}  // namespace
}  // namespace fixfuse::poly
