// Unit + property tests for poly::IntegerSet and poly::PresburgerSet:
// Fourier-Motzkin projection, emptiness proofs, exact point search,
// lexmin/lexmax, objective bounds.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "poly/presburger.h"
#include "poly/set.h"
#include "support/error.h"
#include "support/rng.h"

namespace fixfuse::poly {
namespace {

AffineExpr V(const std::string& n) { return AffineExpr::var(n); }
AffineExpr C(std::int64_t k) { return AffineExpr(k); }

// { [i, j] : 0 <= i <= 9, i <= j <= 9 } - a triangle with 55 points.
IntegerSet triangle() {
  IntegerSet s({"i", "j"});
  s.addRange("i", C(0), C(9));
  s.addGE(V("j") - V("i"));
  s.addGE(C(9) - V("j"));
  return s;
}

TEST(IntegerSet, DuplicateVarThrows) {
  EXPECT_THROW(IntegerSet({"i", "i"}), InternalError);
}

TEST(IntegerSet, ConstantContradictionKnownEmpty) {
  IntegerSet s({"i"});
  s.addGE(C(-1));
  EXPECT_TRUE(s.knownEmpty());
  EXPECT_TRUE(s.provablyEmpty());
}

TEST(IntegerSet, GcdTestDetectsNoSolution) {
  // 2i == 1 has no integer solution.
  IntegerSet s({"i"});
  s.addEQ(AffineExpr::term(2, "i") - C(1));
  EXPECT_TRUE(s.knownEmpty());
}

TEST(IntegerSet, NormalisationTightensConstant) {
  // 2i - 1 >= 0  =>  i >= 1 over the integers.
  IntegerSet s({"i"});
  s.addGE(AffineExpr::term(2, "i") - C(1));
  s.addGE(C(100) - V("i"));
  auto m = s.lexminAt({});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ((*m)[0], 1);
}

TEST(IntegerSet, ParametersAreSymbolsNotVars) {
  IntegerSet s({"i"});
  s.addRange("i", C(1), V("N"));
  EXPECT_EQ(s.parameters(), (std::vector<std::string>{"N"}));
}

TEST(IntegerSet, PointSearchExact) {
  IntegerSet s = triangle();
  auto p = s.findPointAt({});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<std::int64_t>{0, 0}));
}

TEST(IntegerSet, LexminLexmax) {
  IntegerSet s = triangle();
  auto mn = s.lexminAt({});
  auto mx = s.lexmaxAt({});
  ASSERT_TRUE(mn && mx);
  EXPECT_EQ(*mn, (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(*mx, (std::vector<std::int64_t>{9, 9}));
}

TEST(IntegerSet, EnumerationCountsTrianglePoints) {
  IntegerSet s = triangle();
  int count = 0;
  s.forEachPointAt({}, [&](const std::vector<std::int64_t>& pt) {
    EXPECT_LE(pt[0], pt[1]);
    ++count;
  });
  EXPECT_EQ(count, 55);
}

TEST(IntegerSet, EnumerationBudgetThrows) {
  IntegerSet s = triangle();
  EXPECT_THROW(
      s.forEachPointAt({}, [](const std::vector<std::int64_t>&) {}, 10),
      InternalError);
}

TEST(IntegerSet, UnboundedSearchThrows) {
  IntegerSet s({"i"});
  s.addGE(V("i"));  // i >= 0, no upper bound
  EXPECT_THROW(s.findPointAt({}), UnsupportedError);
}

TEST(IntegerSet, ParametricInstantiation) {
  IntegerSet s({"i"});
  s.addRange("i", C(1), V("N"));
  auto m = s.lexmaxAt({{"N", 5}});
  ASSERT_TRUE(m);
  EXPECT_EQ((*m)[0], 5);
  EXPECT_FALSE(s.hasPointAt({{"N", 0}}));
  EXPECT_THROW(s.lexmaxAt({}), InternalError);  // unbound parameter
}

TEST(IntegerSet, ProvablyEmptyParametric) {
  // { i : 1 <= i <= N and i >= N + 1 } is empty for every N.
  IntegerSet s({"i"});
  s.addRange("i", C(1), V("N"));
  s.addGE(V("i") - V("N") - C(1));
  ParamContext ctx;
  ctx.addParam("N", 1, 1000);
  EXPECT_TRUE(s.provablyEmpty(ctx));
}

TEST(IntegerSet, NotProvablyEmptyWhenNonempty) {
  IntegerSet s({"i"});
  s.addRange("i", C(1), V("N"));
  ParamContext ctx;
  ctx.addParam("N", 4, 1000);
  EXPECT_FALSE(s.provablyEmpty(ctx));
  EXPECT_TRUE(s.hasPointAt({{"N", 4}}));
}

TEST(IntegerSet, EqualitySubstitutionIsUsed) {
  // { [i,j] : i == j + 2, 0 <= j <= 5 } projected to [j] keeps 0<=j<=5;
  // projected to [i] gives 2 <= i <= 7.
  IntegerSet s({"i", "j"});
  s.addEQ(V("i") - V("j") - C(2));
  s.addRange("j", C(0), C(5));
  IntegerSet pi = s.eliminated({"j"});
  EXPECT_TRUE(pi.exact());
  auto mn = pi.lexminAt({});
  auto mx = pi.lexmaxAt({});
  ASSERT_TRUE(mn && mx);
  EXPECT_EQ((*mn)[0], 2);
  EXPECT_EQ((*mx)[0], 7);
}

TEST(IntegerSet, NonUnitEliminationFlagsInexact) {
  // { [i,j] : 2i == j, ... } eliminating i with coefficient 2 drops the
  // divisibility constraint on j, so the projection must be flagged.
  IntegerSet s({"i", "j"});
  s.addEQ(AffineExpr::term(2, "i") - V("j"));
  s.addRange("j", C(0), C(10));
  IntegerSet pj = s.eliminated({"i"});
  EXPECT_FALSE(pj.exact());
  // Even the inexact projection remains a sound superset:
  // every even j in [0,10] must be present.
  for (std::int64_t j = 0; j <= 10; j += 2) {
    IntegerSet q = pj;
    q.addEQ(V("j") - C(j));
    EXPECT_TRUE(q.hasPointAt({})) << j;
  }
}

TEST(IntegerSet, FourierMotzkinPairExactness) {
  // Unit-coefficient system: projection stays exact.
  IntegerSet s = triangle();
  IntegerSet pj = s.eliminated({"i"});
  EXPECT_TRUE(pj.exact());
  auto mn = pj.lexminAt({});
  auto mx = pj.lexmaxAt({});
  EXPECT_EQ((*mn)[0], 0);
  EXPECT_EQ((*mx)[0], 9);
}

TEST(IntegerSet, MaxValueAtObjective) {
  IntegerSet s = triangle();
  // max(j - i) over the triangle is 9 (at i=0, j=9).
  auto m = s.maxValueAt(V("j") - V("i"), {});
  ASSERT_TRUE(m);
  EXPECT_EQ(*m, Rational(9));
}

TEST(IntegerSet, MaxValueEmptySetIsNullopt) {
  IntegerSet s({"i"});
  s.addRange("i", C(1), C(0));
  EXPECT_FALSE(s.maxValueAt(V("i"), {}).has_value());
}

TEST(IntegerSet, ProvablyAtMost) {
  IntegerSet s = triangle();
  ParamContext ctx;
  EXPECT_TRUE(s.provablyAtMost(V("j") - V("i"), 9, ctx));
  EXPECT_FALSE(s.provablyAtMost(V("j") - V("i"), 8, ctx));
}

TEST(IntegerSet, ProvablyAtMostParametric) {
  // { [i,i'] : 1 <= i' <= i <= N } : i - i' <= N - 1 always; not <= N - 2.
  IntegerSet s({"i", "ip"});
  s.addRange("ip", C(1), V("i"));
  s.addGE(V("N") - V("i"));
  ParamContext ctx;
  ctx.addParam("N", 2, 100000);
  EXPECT_TRUE(s.provablyAtMost(V("i") - V("ip"),  // max is N-1 <= 10^5-1
                               99999, ctx));
  EXPECT_FALSE(s.provablyAtMost(V("i") - V("ip"), 0, ctx));
}

TEST(IntegerSet, SymbolicUpperBounds) {
  IntegerSet s({"i", "ip"});
  s.addRange("ip", C(1), V("i"));
  s.addGE(V("N") - V("i"));
  auto bounds = s.symbolicUpperBounds(V("i") - V("ip"));
  ASSERT_FALSE(bounds.empty());
  // Every reported bound must hold at concrete N; the tightest should be
  // exactly N - 1.
  std::int64_t best = INT64_MAX;
  for (const auto& [expr, div] : bounds) {
    std::int64_t v = expr.evaluate({{"N", 10}}) / div;
    best = std::min(best, v);
    EXPECT_GE(v, 9);
  }
  EXPECT_EQ(best, 9);
}

TEST(IntegerSet, SubstitutedDropsVar) {
  IntegerSet s = triangle();
  IntegerSet s0 = s.substituted("i", C(3));
  EXPECT_EQ(s0.vars(), (std::vector<std::string>{"j"}));
  auto mn = s0.lexminAt({});
  ASSERT_TRUE(mn);
  EXPECT_EQ((*mn)[0], 3);
}

TEST(IntegerSet, RenameRejectsCollision) {
  IntegerSet s = triangle();
  EXPECT_THROW(s.renamed("i", "j"), InternalError);
  IntegerSet r = s.renamed("i", "i2");
  EXPECT_EQ(r.vars(), (std::vector<std::string>{"i2", "j"}));
  int count = 0;
  r.forEachPointAt({}, [&](const std::vector<std::int64_t>&) { ++count; });
  EXPECT_EQ(count, 55);
}

TEST(IntegerSet, IntersectionRequiresSameTuple) {
  IntegerSet a({"i"});
  IntegerSet b({"j"});
  EXPECT_THROW(a.intersected(b), InternalError);
}

TEST(IntegerSet, IntersectionConjoins) {
  IntegerSet a({"i"});
  a.addRange("i", C(0), C(10));
  IntegerSet b({"i"});
  b.addRange("i", C(5), C(20));
  IntegerSet c = a.intersected(b);
  auto mn = c.lexminAt({});
  auto mx = c.lexmaxAt({});
  EXPECT_EQ((*mn)[0], 5);
  EXPECT_EQ((*mx)[0], 10);
}

// --- property tests: FM emptiness vs brute force on random systems -------

struct RandomSystem {
  IntegerSet set{std::vector<std::string>{"x", "y", "z"}};
  // All generated constraints, including any the set folded into its
  // knownEmpty flag (constant contradictions never reach constraints()).
  std::vector<Constraint> generated;
  bool bruteNonempty = false;

  bool bruteSatisfied(std::int64_t x, std::int64_t y, std::int64_t z) const {
    for (const auto& c : generated) {
      std::int64_t v = c.expr.evaluate({{"x", x}, {"y", y}, {"z", z}});
      if (c.kind == Constraint::Kind::GE ? v < 0 : v != 0) return false;
    }
    return true;
  }
};

RandomSystem randomSystem(SplitMix64& rng) {
  RandomSystem r;
  // Box [-4, 4]^3 plus 4 random constraints with coefficients in [-2, 2].
  auto add = [&](Constraint c) {
    r.generated.push_back(c);
    r.set.addConstraint(std::move(c));
  };
  add(Constraint::ge(V("x") + C(4)));
  add(Constraint::ge(C(4) - V("x")));
  add(Constraint::ge(V("y") + C(4)));
  add(Constraint::ge(C(4) - V("y")));
  add(Constraint::ge(V("z") + C(4)));
  add(Constraint::ge(C(4) - V("z")));
  for (int c = 0; c < 4; ++c) {
    AffineExpr e = AffineExpr::term(rng.nextInt(-2, 2), "x") +
                   AffineExpr::term(rng.nextInt(-2, 2), "y") +
                   AffineExpr::term(rng.nextInt(-2, 2), "z") +
                   C(rng.nextInt(-5, 5));
    if (rng.nextBounded(4) == 0)
      add(Constraint::eq(e));
    else
      add(Constraint::ge(e));
  }
  for (std::int64_t x = -4; x <= 4 && !r.bruteNonempty; ++x)
    for (std::int64_t y = -4; y <= 4 && !r.bruteNonempty; ++y)
      for (std::int64_t z = -4; z <= 4 && !r.bruteNonempty; ++z)
        if (r.bruteSatisfied(x, y, z)) r.bruteNonempty = true;
  return r;
}

TEST(IntegerSetProperty, EmptinessProofIsSound) {
  SplitMix64 rng(12345);
  int proved = 0;
  for (int trial = 0; trial < 300; ++trial) {
    RandomSystem r = randomSystem(rng);
    if (r.set.provablyEmpty()) {
      EXPECT_FALSE(r.bruteNonempty) << "unsound emptiness proof: "
                                    << r.set.str();
      ++proved;
    }
  }
  EXPECT_GT(proved, 20);  // the proof fires on a healthy share of cases
}

TEST(IntegerSetProperty, PointSearchMatchesBruteForce) {
  SplitMix64 rng(999);
  for (int trial = 0; trial < 120; ++trial) {
    RandomSystem r = randomSystem(rng);
    EXPECT_EQ(r.set.hasPointAt({}), r.bruteNonempty) << r.set.str();
  }
}

TEST(IntegerSetProperty, LexminIsMinimalAndMember) {
  SplitMix64 rng(31337);
  for (int trial = 0; trial < 60; ++trial) {
    RandomSystem r = randomSystem(rng);
    auto mn = r.set.lexminAt({});
    if (!r.bruteNonempty) {
      EXPECT_FALSE(mn.has_value());
      continue;
    }
    ASSERT_TRUE(mn.has_value());
    // Brute-force the true lexmin and compare.
    std::vector<std::int64_t> best;
    for (std::int64_t x = -4; x <= 4; ++x)
      for (std::int64_t y = -4; y <= 4; ++y)
        for (std::int64_t z = -4; z <= 4; ++z) {
          if (!r.bruteSatisfied(x, y, z)) continue;
          std::vector<std::int64_t> pt{x, y, z};
          if (best.empty() ||
              std::lexicographical_compare(pt.begin(), pt.end(), best.begin(),
                                           best.end()))
            best = pt;
        }
    EXPECT_EQ(*mn, best);
  }
}

// --- PresburgerSet ---------------------------------------------------------

TEST(PresburgerSet, UnionOfPieces) {
  IntegerSet a({"i"});
  a.addRange("i", C(0), C(2));
  IntegerSet b({"i"});
  b.addRange("i", C(5), C(6));
  PresburgerSet u(a);
  u.addPiece(b);
  auto pts = u.pointsAt({});
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_EQ(pts.front(), (std::vector<std::int64_t>{0}));
  EXPECT_EQ(pts.back(), (std::vector<std::int64_t>{6}));
}

TEST(PresburgerSet, OverlappingPiecesDeduplicated) {
  IntegerSet a({"i"});
  a.addRange("i", C(0), C(4));
  IntegerSet b({"i"});
  b.addRange("i", C(3), C(6));
  PresburgerSet u(a);
  u.addPiece(b);
  EXPECT_EQ(u.pointsAt({}).size(), 7u);
}

TEST(PresburgerSet, EmptyPieceIsDropped) {
  IntegerSet a({"i"});
  a.addGE(C(-1));  // contradiction
  PresburgerSet u(std::vector<std::string>{"i"});
  u.addPiece(a);
  EXPECT_TRUE(u.noPieces());
  EXPECT_TRUE(u.provablyEmpty());
}

TEST(PresburgerSet, LexminAcrossPieces) {
  IntegerSet a({"i"});
  a.addRange("i", C(5), C(6));
  IntegerSet b({"i"});
  b.addRange("i", C(2), C(3));
  PresburgerSet u(a);
  u.addPiece(b);
  auto mn = u.lexminAt({});
  auto mx = u.lexmaxAt({});
  EXPECT_EQ((*mn)[0], 2);
  EXPECT_EQ((*mx)[0], 6);
}

TEST(PresburgerSet, MaxValueAcrossPieces) {
  IntegerSet a({"i"});
  a.addRange("i", C(0), C(3));
  IntegerSet b({"i"});
  b.addRange("i", C(10), C(12));
  PresburgerSet u(a);
  u.addPiece(b);
  auto m = u.maxValueAt(V("i"), {});
  ASSERT_TRUE(m);
  EXPECT_EQ(*m, 12);
}

TEST(PresburgerSet, IntersectedWithConstraints) {
  IntegerSet a({"i"});
  a.addRange("i", C(0), C(9));
  PresburgerSet u(a);
  auto v = u.intersectedWith({Constraint::ge(V("i") - C(7))});
  EXPECT_EQ(v.pointsAt({}).size(), 3u);
}

TEST(LexLessPieces, EncodesStrictOrder) {
  std::vector<AffineExpr> a{V("a1"), V("a2")};
  std::vector<AffineExpr> b{V("b1"), V("b2")};
  auto pieces = lexLessPieces(a, b);
  ASSERT_EQ(pieces.size(), 2u);
  // Evaluate all pieces over a small grid and compare against the
  // definition of lexicographic <.
  for (std::int64_t a1 = -2; a1 <= 2; ++a1)
    for (std::int64_t a2 = -2; a2 <= 2; ++a2)
      for (std::int64_t b1 = -2; b1 <= 2; ++b1)
        for (std::int64_t b2 = -2; b2 <= 2; ++b2) {
          bool expect = (a1 < b1) || (a1 == b1 && a2 < b2);
          bool got = false;
          std::map<std::string, std::int64_t> bind{
              {"a1", a1}, {"a2", a2}, {"b1", b1}, {"b2", b2}};
          for (const auto& piece : pieces) {
            bool sat = true;
            for (const auto& c : piece) {
              std::int64_t v = c.expr.evaluate(bind);
              if (c.kind == Constraint::Kind::GE ? v < 0 : v != 0) {
                sat = false;
                break;
              }
            }
            got |= sat;
          }
          EXPECT_EQ(got, expect) << a1 << "," << a2 << " vs " << b1 << ","
                                 << b2;
        }
}

TEST(ParamContext, SampleBindingsRespectExtraConstraints) {
  ParamContext ctx;
  ctx.addParam("N", 2, 10, {2, 5, 10});
  ctx.addParam("M", 2, 10, {2, 5, 10});
  ctx.addConstraint(Constraint::ge(V("N") - V("M")));  // M <= N
  auto bindings = ctx.sampleBindings();
  ASSERT_FALSE(bindings.empty());
  for (const auto& b : bindings) EXPECT_LE(b.at("M"), b.at("N"));
}

TEST(ParamContext, DuplicateParamThrows) {
  ParamContext ctx;
  ctx.addParam("N", 1, 5);
  EXPECT_THROW(ctx.addParam("N", 1, 5), InternalError);
}

// Regression for the dangling range-for pattern (CLAUDE.md): iterating a
// temporary's constraints() - `for (auto& c : f(x).constraints())` -
// left a dangling reference. The accessors are now ref-qualified with
// deleted rvalue overloads, so that code no longer compiles. (The checks
// go through dependent requires-expressions: non-dependent use of a
// deleted function is a hard error rather than a SFINAE "false".)
template <typename T>
constexpr bool rvalueConstraintsCallable =
    requires(T t) { std::move(t).constraints(); };
template <typename T>
constexpr bool rvalueVarsCallable = requires(T t) { std::move(t).vars(); };
template <typename T>
constexpr bool rvaluePiecesCallable =
    requires(T t) { std::move(t).pieces(); };
template <typename T>
constexpr bool lvalueConstraintsCallable =
    requires(const T& t) { t.constraints(); };
template <typename T>
constexpr bool lvaluePiecesCallable = requires(const T& t) { t.pieces(); };

TEST(IntegerSet, AccessorsRejectRvalues) {
  static_assert(!rvalueConstraintsCallable<IntegerSet>);
  static_assert(!rvalueConstraintsCallable<const IntegerSet>);
  static_assert(!rvalueVarsCallable<IntegerSet>);
  static_assert(!rvaluePiecesCallable<PresburgerSet>);
  static_assert(!rvalueVarsCallable<PresburgerSet>);
  // Lvalue access is unchanged.
  static_assert(lvalueConstraintsCallable<IntegerSet>);
  static_assert(lvaluePiecesCallable<PresburgerSet>);

  // The safe form: bind the set to a local, then iterate (ASan-clean).
  IntegerSet projected = triangle().eliminated({"j"});
  std::size_t seen = 0;
  for (const auto& c : projected.constraints()) {
    EXPECT_FALSE(c.str().empty());
    ++seen;
  }
  EXPECT_EQ(seen, projected.constraints().size());
  EXPECT_GT(seen, 0u);
}

}  // namespace
}  // namespace fixfuse::poly
