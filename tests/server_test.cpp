// The compile server: wire format round-trips, malformed-frame
// rejection, every verb through the protocol-independent Service, the
// served digest against a locally computed reference, and the full
// Server/Client daemon over an AF_UNIX socket (concurrent clients,
// repeat-request cache hits, shutdown).
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "engine/engine.h"
#include "server/corpus.h"
#include "server/server.h"
#include "support/protocol.h"

namespace fixfuse {
namespace {

namespace fs = std::filesystem;

const char* kProgram = R"(
program(N) {
  double A[(N + 4)];
  double B[(N + 4)];
  for k = 1 .. N {
    for i = 1 .. N {
      A[i] = (A[i] + (0.5 * B[i]));
    }
    for i = 1 .. N {
      B[i] = (B[i] + A[min((i + 1), N)]);
    }
  }
}
)";

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

server::Request makeRun(std::int64_t n, std::uint64_t seed) {
  server::Request req;
  req.verb = "run";
  req.headers["ctx"] = "N=4:100000";
  req.headers["params"] = "N=" + std::to_string(n);
  req.headers["seed"] = std::to_string(seed);
  req.body = kProgram;
  return req;
}

TEST(ServerProtocol, RequestRoundTrip) {
  server::Request req;
  req.verb = "run";
  req.headers = {{"ctx", "N=4:100"}, {"params", "N=8"}, {"seed", "3"}};
  req.body = "program(N) { }";
  const server::Request back = server::Request::parse(req.serialize());
  EXPECT_EQ(back.verb, req.verb);
  EXPECT_EQ(back.headers, req.headers);
  EXPECT_EQ(back.body, req.body);
}

TEST(ServerProtocol, ResponseRoundTrip) {
  server::Response resp;
  resp.ok = false;
  resp.headers = {{"error", "parse"}};
  resp.body = "line 3: unexpected token";
  const server::Response back = server::Response::parse(resp.serialize());
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.header("error"), "parse");
  EXPECT_EQ(back.body, resp.body);
}

TEST(ServerProtocol, MalformedFramesThrow) {
  EXPECT_THROW(server::Request::parse(""), support::ProtocolError);
  EXPECT_THROW(server::Request::parse("HTTP/1.1 GET /\n\n"),
               support::ProtocolError);
  EXPECT_THROW(server::Request::parse("fixfuse/1 \n\n"),
               support::ProtocolError);
  // Headers must terminate with a blank line.
  EXPECT_THROW(server::Request::parse("fixfuse/1 ping\nk: v"),
               support::ProtocolError);
  // Header lines need a colon.
  EXPECT_THROW(server::Request::parse("fixfuse/1 ping\nnocolon\n\n"),
               support::ProtocolError);
  EXPECT_THROW(server::Response::parse("fixfuse/1 maybe\n\n"),
               support::ProtocolError);
}

TEST(ServerService, PingAndUnknownVerb) {
  engine::Engine eng(16);
  server::Service svc(eng);
  server::Request ping;
  ping.verb = "ping";
  EXPECT_TRUE(svc.handle(ping).ok);

  server::Request bogus;
  bogus.verb = "frobnicate";
  const server::Response resp = svc.handle(bogus);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.header("error"), "protocol");
  EXPECT_EQ(svc.stats().errors, 1u);
}

TEST(ServerService, CompileMissThenHit) {
  engine::Engine eng(16);
  server::Service svc(eng);
  server::Request req;
  req.verb = "compile";
  req.headers["ctx"] = "N=4:100000";
  req.body = kProgram;
  const server::Response first = svc.handle(req);
  ASSERT_TRUE(first.ok) << first.body;
  EXPECT_EQ(first.header("cache"), "miss");
  EXPECT_FALSE(first.header("strategy").empty());
  EXPECT_FALSE(first.header("signature").empty());
  const server::Response second = svc.handle(req);
  EXPECT_EQ(second.header("cache"), "hit");
  EXPECT_EQ(second.header("signature"), first.header("signature"));
  EXPECT_EQ(svc.stats().cacheHits, 1u);
}

TEST(ServerService, EmitCReturnsStandaloneKernel) {
  engine::Engine eng(16);
  server::Service svc(eng);
  server::Request req;
  req.verb = "emitc";
  req.body = kProgram;
  const server::Response resp = svc.handle(req);
  ASSERT_TRUE(resp.ok) << resp.body;
  EXPECT_NE(resp.body.find("ff_kernel"), std::string::npos);
}

TEST(ServerService, ErrorsAreClassified) {
  engine::Engine eng(16);
  server::Service svc(eng);

  server::Request noBody;
  noBody.verb = "compile";
  EXPECT_EQ(svc.handle(noBody).header("error"), "protocol");

  server::Request garbage;
  garbage.verb = "compile";
  garbage.body = "this is not a program";
  EXPECT_EQ(svc.handle(garbage).header("error"), "parse");

  server::Request badCtx;
  badCtx.verb = "compile";
  badCtx.headers["ctx"] = "Q=1:10";  // undeclared parameter
  badCtx.body = kProgram;
  EXPECT_EQ(svc.handle(badCtx).header("error"), "protocol");

  server::Request badTile;
  badTile.verb = "compile";
  badTile.headers["tile"] = "8x";  // partial parse rejected
  badTile.body = kProgram;
  EXPECT_EQ(svc.handle(badTile).header("error"), "protocol");

  server::Request unbound = makeRun(32, 1);
  unbound.headers["params"] = "";  // run without a binding for N
  EXPECT_EQ(svc.handle(unbound).header("error"), "protocol");

  // A multi-top-loop program is planner-rejected, never mis-served.
  server::Request multi;
  multi.verb = "compile";
  multi.body =
      "program(N) {\n  double A[(N + 4)];\n"
      "  for i = 1 .. N {\n    A[i] = (A[i] + 1.0);\n  }\n"
      "  for i = 1 .. N {\n    A[i] = (A[i] * 0.5);\n  }\n}\n";
  EXPECT_EQ(svc.handle(multi).header("error"), "unsupported");
}

TEST(ServerService, RunDigestMatchesLocalReference) {
  engine::Engine eng(16);
  server::Service svc(eng);
  const server::Response resp = svc.handle(makeRun(32, 5));
  ASSERT_TRUE(resp.ok) << resp.body;
  EXPECT_FALSE(resp.header("digest").empty());
  EXPECT_FALSE(resp.header("backend").empty());

  // Recompute on a separate engine through the bytecode interpreter:
  // the served digest must match bit-for-bit whatever backend served
  // the request.
  engine::Engine local(16);
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);
  const engine::CompiledProgram cp = local.compileText(kProgram, ctx);
  const interp::Machine m = cp.run(
      {{"N", 32}},
      [&cp](interp::Machine& mm) { server::seedInit(cp.tiled(), mm, 5); },
      interp::Backend::Bytecode);
  EXPECT_EQ(resp.header("digest"),
            hex16(server::stateDigest(cp.tiled(), m)));

  // Same request, same digest; different seed, different digest.
  EXPECT_EQ(svc.handle(makeRun(32, 5)).header("digest"),
            resp.header("digest"));
  EXPECT_NE(svc.handle(makeRun(32, 6)).header("digest"),
            resp.header("digest"));
}

TEST(ServerService, StatsHeadersAreShellAssertable) {
  engine::Engine eng(16);
  server::Service svc(eng);
  svc.handle(makeRun(16, 1));
  server::Request st;
  st.verb = "stats";
  const server::Response resp = svc.handle(st);
  ASSERT_TRUE(resp.ok);
  for (const char* key :
       {"requests", "errors", "compiles", "cache_hits", "runs",
        "runs_verified", "plan_hits", "plan_misses", "native_compiles",
        "disk_enabled"})
    EXPECT_FALSE(resp.header(key).empty()) << key;
  EXPECT_EQ(resp.header("runs"), "1");
  // The body is the engine's full JSON counter snapshot.
  EXPECT_NE(resp.body.find("\"plan_cache\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"served\""), std::string::npos);
}

TEST(ServerDaemon, ServesConcurrentClientsAndShutsDown) {
  const std::string socketPath =
      (fs::temp_directory_path() /
       ("fixfuse-servertest-" + std::to_string(::getpid()) + ".sock"))
          .string();
  engine::Engine eng(64);
  server::Server srv(eng, {.socketPath = socketPath, .workers = 4});
  try {
    srv.start();
  } catch (const support::ProtocolError& e) {
    GTEST_SKIP() << "sockets unavailable: " << e.what();
  }

  // Concurrent clients all compile+run the same program; single-flight
  // means one plan build, and every response must agree on the digest.
  constexpr int kClients = 6;
  std::vector<std::string> digests(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      server::Client c(socketPath);
      const server::Response resp = c.call(makeRun(24, 3));
      if (resp.ok) digests[i] = resp.header("digest");
    });
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(digests[i].empty()) << "client " << i << " failed";
    EXPECT_EQ(digests[i], digests[0]);
  }

  {
    // One connection, many requests: the keep-alive path, with the
    // second round served from the plan cache.
    server::Client c(socketPath);
    server::Request compile;
    compile.verb = "compile";
    compile.headers["ctx"] = "N=4:100000";
    compile.body = kProgram;
    EXPECT_EQ(c.call(compile).header("cache"), "hit");
    server::Request st;
    st.verb = "stats";
    const server::Response stats = c.call(st);
    EXPECT_EQ(stats.header("errors"), "0");
    server::Request sd;
    sd.verb = "shutdown";
    EXPECT_TRUE(c.call(sd).ok);
  }
  srv.wait();  // returns because shutdown stopped the daemon

  // The socket is gone: a fresh client cannot connect.
  EXPECT_THROW(server::Client bad(socketPath), support::ProtocolError);
}

TEST(ServerCorpus, BuildsAndReplaysCleanly) {
  const std::vector<server::CorpusEntry> corpus = server::buildCorpus(2, 2);
  // 4 kernels x 2 variants + fuzz + synthetic, minus any rejects.
  EXPECT_GE(corpus.size(), 8u);
  engine::Engine eng(64);
  server::Service svc(eng);
  for (const server::CorpusEntry& e : corpus) {
    EXPECT_TRUE(svc.handle(e.compileRequest()).ok) << e.name;
    const server::Response run = svc.handle(e.runRequest());
    EXPECT_TRUE(run.ok) << e.name << ": " << run.body;
  }
  EXPECT_EQ(svc.stats().errors, 0u);
}

}  // namespace
}  // namespace fixfuse
