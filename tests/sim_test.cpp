// Tests for the cache / branch / perf simulation substrate.
#include <gtest/gtest.h>

#include "sim/branch.h"
#include "sim/cache.h"
#include "sim/perf.h"
#include "support/error.h"
#include "support/rng.h"

namespace fixfuse::sim {
namespace {

TEST(CacheConfig, Octane2Geometry) {
  CacheConfig l1 = CacheConfig::octane2L1();
  EXPECT_EQ(l1.numSets(), 512u);
  EXPECT_TRUE(l1.valid());
  CacheConfig l2 = CacheConfig::octane2L2();
  EXPECT_EQ(l2.numSets(), 8192u);
  EXPECT_TRUE(l2.valid());
}

TEST(CacheConfig, InvalidConfigsRejected) {
  EXPECT_FALSE((CacheConfig{0, 32, 2}).valid());
  EXPECT_FALSE((CacheConfig{1024, 48, 2}).valid());   // non-pow2 line
  EXPECT_FALSE((CacheConfig{1000, 32, 2}).valid());   // non-divisible
  EXPECT_THROW(Cache(CacheConfig{0, 32, 2}), InternalError);
}

TEST(Cache, ColdMissThenHit) {
  Cache c({1024, 32, 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(8));    // same line
  EXPECT_TRUE(c.access(31));   // still same line
  EXPECT_FALSE(c.access(32));  // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  // 2-way, 16 sets of 32B lines (1024B). Lines 0, 16, 32 map to set 0.
  Cache c({1024, 32, 2});
  auto addrOfLine = [](std::uint64_t line) { return line * 32; };
  EXPECT_FALSE(c.access(addrOfLine(0)));
  EXPECT_FALSE(c.access(addrOfLine(16)));
  EXPECT_TRUE(c.access(addrOfLine(0)));    // 0 is now MRU
  EXPECT_FALSE(c.access(addrOfLine(32)));  // evicts 16 (LRU)
  EXPECT_TRUE(c.access(addrOfLine(0)));
  EXPECT_FALSE(c.access(addrOfLine(16)));  // 16 was evicted
}

TEST(Cache, DirectMappedConflict) {
  // 1-way cache: alternating between two conflicting lines always misses.
  Cache c({512, 32, 1});
  for (int i = 0; i < 10; ++i) {
    c.access(0);
    c.access(512);  // same set, different tag
  }
  EXPECT_EQ(c.misses(), 20u);
}

TEST(Cache, FullyUsedWorkingSetFits) {
  // Sequentially touching exactly the cache size twice: second pass all hits.
  Cache c({1024, 32, 2});
  for (std::uint64_t a = 0; a < 1024; a += 8) c.access(a);
  std::uint64_t missesAfterFirst = c.misses();
  EXPECT_EQ(missesAfterFirst, 32u);  // one per line
  for (std::uint64_t a = 0; a < 1024; a += 8) c.access(a);
  EXPECT_EQ(c.misses(), missesAfterFirst);
}

TEST(Cache, ResetClearsState) {
  Cache c({1024, 32, 2});
  c.access(0);
  c.reset();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_FALSE(c.access(0));  // cold again
}

TEST(Cache, MatchesFullyAssociativeOracleWhenOneSet) {
  // A 1-set cache is fully associative: compare against a simple LRU list.
  CacheConfig cfg{256, 32, 8};  // 8 ways x 32B = 256 -> 1 set
  ASSERT_EQ(cfg.numSets(), 1u);
  Cache c(cfg);
  std::vector<std::uint64_t> lru;  // front = LRU
  SplitMix64 rng(5);
  for (int i = 0; i < 4000; ++i) {
    std::uint64_t line = rng.nextBounded(16);
    bool expectHit = false;
    for (auto it = lru.begin(); it != lru.end(); ++it)
      if (*it == line) {
        lru.erase(it);
        expectHit = true;
        break;
      }
    lru.push_back(line);
    if (lru.size() > 8) lru.erase(lru.begin());
    EXPECT_EQ(c.access(line * 32), expectHit) << "iteration " << i;
  }
}

TEST(CacheHierarchy, L2SeesOnlyL1Misses) {
  CacheHierarchy h({1024, 32, 2}, {4096, 64, 2});
  for (int rep = 0; rep < 3; ++rep)
    for (std::uint64_t a = 0; a < 2048; a += 32) h.access(a);
  EXPECT_EQ(h.l2().accesses(), h.l1().misses());
  EXPECT_GT(h.l1().misses(), 0u);
  // L2 is big enough for the working set: after the cold pass it hits.
  EXPECT_LT(h.l2().misses(), h.l2().accesses());
}

TEST(BranchPredictor, WellPredictedLoopPattern) {
  BranchPredictor p;
  // 100 taken then 1 not-taken (loop exit): exactly 1 mispredict expected
  // from the weakly-taken start.
  for (int i = 0; i < 100; ++i) p.resolve(0, true);
  p.resolve(0, false);
  EXPECT_EQ(p.resolved(), 101u);
  EXPECT_EQ(p.mispredicted(), 1u);
}

TEST(BranchPredictor, AlternatingPatternMispredictsOften) {
  BranchPredictor p;
  for (int i = 0; i < 100; ++i) p.resolve(1, i % 2 == 0);
  EXPECT_GT(p.mispredicted(), 40u);
}

TEST(BranchPredictor, SitesAreIndependent) {
  BranchPredictor p;
  for (int i = 0; i < 50; ++i) {
    p.resolve(0, true);
    p.resolve(7, false);
  }
  // Both sites converge to their bias: ~1 mispredict each at the start.
  EXPECT_LE(p.mispredicted(), 4u);
}

TEST(BranchPredictor, NegativeSiteThrows) {
  BranchPredictor p;
  EXPECT_THROW(p.resolve(-1, true), InternalError);
}

TEST(CostModel, PaperConstants) {
  CostModel m;
  EXPECT_DOUBLE_EQ(m.l1MissCycles, 9.92);
  EXPECT_DOUBLE_EQ(m.l2MissCycles, 162.55);
  EXPECT_DOUBLE_EQ(m.mispredictCycles, 5.0);
}

TEST(CostModel, CycleBreakdown) {
  PerfCounts c;
  c.loads = 10;
  c.stores = 5;
  c.intOps = 20;
  c.flops = 15;
  c.branchesResolved = 8;
  c.branchesMispredicted = 2;
  c.l1Misses = 3;
  c.l2Misses = 1;
  CycleBreakdown b = cyclesOf(c);
  EXPECT_DOUBLE_EQ(b.l1MissCycles, 3 * 9.92);
  EXPECT_DOUBLE_EQ(b.l2MissCycles, 162.55);
  EXPECT_DOUBLE_EQ(b.mispredictCycles, 10.0);
  EXPECT_DOUBLE_EQ(b.branchResolveCycles, 8.0);
  EXPECT_DOUBLE_EQ(b.instructionCycles, 58.0);
  EXPECT_DOUBLE_EQ(b.total(), 3 * 9.92 + 162.55 + 10 + 8 + 58);
  EXPECT_EQ(c.graduatedInstructions(), 58u);
}

TEST(SimObserver, EndToEndCounts) {
  SimObserver obs;
  obs.onLoad(0x10000);
  obs.onLoad(0x10000);  // L1 hit
  obs.onStore(0x90000);
  obs.onBranch(0, true);
  obs.onBranch(0, false);
  obs.onIntOps(3);
  obs.onFlops(2);
  PerfCounts c = obs.counts();
  EXPECT_EQ(c.loads, 2u);
  EXPECT_EQ(c.stores, 1u);
  EXPECT_EQ(c.l1Accesses, 3u);
  EXPECT_EQ(c.l1Misses, 2u);
  EXPECT_EQ(c.l2Accesses, 2u);
  EXPECT_EQ(c.branchesResolved, 2u);
  EXPECT_EQ(c.intOps, 3u);
  EXPECT_EQ(c.flops, 2u);
}

TEST(SimObserver, ResetZeroesEverything) {
  SimObserver obs;
  obs.onLoad(0x10000);
  obs.onBranch(0, true);
  obs.reset();
  PerfCounts c = obs.counts();
  EXPECT_EQ(c.loads, 0u);
  EXPECT_EQ(c.l1Accesses, 0u);
  EXPECT_EQ(c.branchesResolved, 0u);
}

TEST(Report, ContainsKeyLines) {
  PerfCounts c;
  c.loads = 7;
  std::string r = formatReport("chol seq N=100", c);
  EXPECT_NE(r.find("chol seq N=100"), std::string::npos);
  EXPECT_NE(r.find("loads                 7"), std::string::npos);
  EXPECT_NE(r.find("TOTAL modelled cycles"), std::string::npos);
}

}  // namespace
}  // namespace fixfuse::sim
