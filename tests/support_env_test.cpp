// Unit tests for support::env - the shared warn-and-fall-back parsing of
// the FIXFUSE_* knobs (truthiness, validated positive integers, the
// uniform warning format, once-per-var suppression). Each test uses its
// own variable name: the once-per-var set and the process environment
// both persist across tests.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "codegen/module_cache.h"
#include "codegen/parallel.h"
#include "ir/stmt.h"
#include "poly/set.h"
#include "support/env.h"

namespace fixfuse::support {
namespace {

TEST(Env, ParseTruthy) {
  using env::parseTruthy;
  for (const char* v : {"1", "true", "TRUE", "Yes", "on", "ON"})
    EXPECT_EQ(parseTruthy(v), true) << v;
  for (const char* v : {"", "0", "false", "No", "off", "OFF"})
    EXPECT_EQ(parseTruthy(v), false) << v;
  for (const char* v : {"2", "yep", "enable", "tru", " 1"})
    EXPECT_EQ(parseTruthy(v), std::nullopt) << v;
}

TEST(Env, TruthyUnsetUsesFallback) {
  ::unsetenv("FIXFUSE_ENVTEST_UNSET");
  EXPECT_FALSE(env::truthy("FIXFUSE_ENVTEST_UNSET", false, "noop"));
  EXPECT_TRUE(env::truthy("FIXFUSE_ENVTEST_UNSET", true, "noop"));
}

TEST(Env, TruthyValidValuesParse) {
  ::setenv("FIXFUSE_ENVTEST_T1", "yes", 1);
  EXPECT_TRUE(env::truthy("FIXFUSE_ENVTEST_T1", false, "noop"));
  ::setenv("FIXFUSE_ENVTEST_T1", "off", 1);
  EXPECT_FALSE(env::truthy("FIXFUSE_ENVTEST_T1", true, "noop"));
  ::unsetenv("FIXFUSE_ENVTEST_T1");
}

TEST(Env, TruthyMalformedWarnsAndFallsBack) {
  ::setenv("FIXFUSE_ENVTEST_T2", "maybe", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_TRUE(env::truthy("FIXFUSE_ENVTEST_T2", true, "running anyway"));
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err,
            "warning: unrecognized FIXFUSE_ENVTEST_T2 value 'maybe' "
            "(expected 1/true/yes/on or 0/false/no/off); running anyway\n");
  ::unsetenv("FIXFUSE_ENVTEST_T2");
}

TEST(Env, PositiveIntParsesCompleteValues) {
  ::setenv("FIXFUSE_ENVTEST_P1", "12", 1);
  EXPECT_EQ(env::positiveInt("FIXFUSE_ENVTEST_P1", 100, 7, "an int", "noop"),
            12u);
  ::setenv("FIXFUSE_ENVTEST_P1", "100", 1);
  EXPECT_EQ(env::positiveInt("FIXFUSE_ENVTEST_P1", 100, 7, "an int", "noop"),
            100u);
  ::unsetenv("FIXFUSE_ENVTEST_P1");
  EXPECT_EQ(env::positiveInt("FIXFUSE_ENVTEST_P1", 100, 7, "an int", "noop"),
            7u);
}

TEST(Env, PositiveIntRejectsMalformedWithWarning) {
  // Partial parse, zero, negative, above-max, out-of-range (would wrap a
  // 32-bit parse), whitespace, and a "+" sign all warn once per variable
  // and fall back. Each value gets its own variable: positiveInt warns
  // once per var per process, so re-using one name would suppress every
  // warning after the first.
  const char* bad[] = {"12abc", "0",   "-3",  "101", "abc",
                       "99999999999",  " 12", "12 ", "+12"};
  int i = 0;
  for (const char* v : bad) {
    std::string var = "FIXFUSE_ENVTEST_P2_" + std::to_string(i++);
    ::setenv(var.c_str(), v, 1);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(env::positiveInt(var.c_str(), 100, 7, "an int <= 100",
                               "using the default"),
              7u)
        << v;
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(err, "warning: unrecognized " + var + " value '" + v +
                       "' (expected an int <= 100); using the default\n")
        << v;
    // The second rejection of the same variable is silent (once per var).
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(env::positiveInt(var.c_str(), 100, 7, "an int <= 100",
                               "using the default"),
              7u)
        << v;
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "") << v;
    ::unsetenv(var.c_str());
  }
}

TEST(Env, EngineCacheBoundParsesStrictPositiveInt) {
  // The engine/module cache bound knob goes through the same strict
  // positiveInt path as every other FIXFUSE_* integer. Valid values
  // first: the invalid-value warning below is once-per-var for the
  // whole process, so order matters within this binary.
  ::unsetenv("FIXFUSE_ENGINE_CACHE");
  EXPECT_EQ(codegen::engineCacheBoundFromEnv(), 256u);
  ::setenv("FIXFUSE_ENGINE_CACHE", "1", 1);
  EXPECT_EQ(codegen::engineCacheBoundFromEnv(), 1u);
  ::setenv("FIXFUSE_ENGINE_CACHE", "1048576", 1);  // 2^20, the max
  EXPECT_EQ(codegen::engineCacheBoundFromEnv(), 1048576u);

  // Malformed: warn once with the uniform format, fall back to 256.
  ::setenv("FIXFUSE_ENGINE_CACHE", "0", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(codegen::engineCacheBoundFromEnv(), 256u);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(),
            "warning: unrecognized FIXFUSE_ENGINE_CACHE value '0' "
            "(expected a positive entry count <= 2^20); "
            "using default bound 256\n");

  // Further rejections of the same variable are silent (once per var),
  // and above-max / partial parses fall back the same way.
  for (const char* v : {"1048577", "16k", "-8", "maybe"}) {
    ::setenv("FIXFUSE_ENGINE_CACHE", v, 1);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(codegen::engineCacheBoundFromEnv(), 256u) << v;
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "") << v;
  }
  ::unsetenv("FIXFUSE_ENGINE_CACHE");
}

TEST(Env, ParallelWorkersParsesStrictPositiveInt) {
  // FIXFUSE_PARALLEL: unset and the literal "0" mean serial, silently;
  // everything else goes through the strict positiveInt path (bounded,
  // complete parse, no whitespace or sign). Valid values first - the
  // invalid-value warning below is once-per-var for the process.
  ::unsetenv("FIXFUSE_PARALLEL");
  EXPECT_EQ(codegen::parallelWorkersFromEnv(), 0u);
  ::setenv("FIXFUSE_PARALLEL", "0", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(codegen::parallelWorkersFromEnv(), 0u);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");  // "0" is silent
  ::setenv("FIXFUSE_PARALLEL", "1", 1);
  EXPECT_EQ(codegen::parallelWorkersFromEnv(), 1u);
  ::setenv("FIXFUSE_PARALLEL", "2", 1);
  EXPECT_EQ(codegen::parallelWorkersFromEnv(), 2u);
  ::setenv("FIXFUSE_PARALLEL", "1024", 1);  // the max
  EXPECT_EQ(codegen::parallelWorkersFromEnv(), 1024u);

  // Malformed: warn once with the uniform format, fall back to serial.
  ::setenv("FIXFUSE_PARALLEL", "1025", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(codegen::parallelWorkersFromEnv(), 0u);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(),
            "warning: unrecognized FIXFUSE_PARALLEL value '1025' "
            "(expected a worker count in [0, 1024]); "
            "running the native backend serially\n");

  // Whitespace, signs, partial parses and overflow are all rejected the
  // same way; repeats of the same variable are silent (once per var).
  for (const char* v : {" 2", "2 ", "+2", "-2", "2x", "0x2",
                        "99999999999999999999", "all", ""}) {
    ::setenv("FIXFUSE_PARALLEL", v, 1);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(codegen::parallelWorkersFromEnv(), 0u) << "'" << v << "'";
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "")
        << "'" << v << "'";
  }
  ::unsetenv("FIXFUSE_PARALLEL");
}

TEST(Env, PositiveDoubleParsesCompleteValues) {
  ::unsetenv("FIXFUSE_ENVTEST_PD");
  EXPECT_DOUBLE_EQ(env::positiveDouble("FIXFUSE_ENVTEST_PD", 1024.0, 1.05,
                                       "a positive decimal", "noop"),
                   1.05);
  const struct {
    const char* v;
    double want;
  } cases[] = {{"1.05", 1.05}, {"2", 2.0},     {"0.5", 0.5},
               {"1.", 1.0},    {".25", 0.25},  {"1024", 1024.0}};
  for (const auto& c : cases) {
    ::setenv("FIXFUSE_ENVTEST_PD", c.v, 1);
    EXPECT_DOUBLE_EQ(env::positiveDouble("FIXFUSE_ENVTEST_PD", 1024.0, 1.05,
                                         "a positive decimal", "noop"),
                     c.want)
        << "'" << c.v << "'";
  }
  ::unsetenv("FIXFUSE_ENVTEST_PD");
}

TEST(Env, PositiveDoubleRejectsMalformedWithWarning) {
  // First malformed value warns in the uniform format...
  ::setenv("FIXFUSE_ENVTEST_PDBAD", "1.05x", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(env::positiveDouble("FIXFUSE_ENVTEST_PDBAD", 1024.0, 1.05,
                                       "a positive decimal <= 1024",
                                       "using the default"),
                   1.05);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(),
            "warning: unrecognized FIXFUSE_ENVTEST_PDBAD value '1.05x' "
            "(expected a positive decimal <= 1024); using the default\n");
  // ...and every later rejection of the same variable is silent. Signs,
  // whitespace, exponents, multiple dots, zero, negatives and
  // out-of-range values all fall back.
  for (const char* v : {"", " 1.05", "1.05 ", "+1.05", "-1.05", "1e3",
                        "1.0.5", ".", "0", "0.0", "1025", "nan", "inf"}) {
    ::setenv("FIXFUSE_ENVTEST_PDBAD", v, 1);
    ::testing::internal::CaptureStderr();
    EXPECT_DOUBLE_EQ(env::positiveDouble("FIXFUSE_ENVTEST_PDBAD", 1024.0,
                                         1.05, "a positive decimal <= 1024",
                                         "using the default"),
                     1.05)
        << "'" << v << "'";
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "") << "'" << v << "'";
  }
  ::unsetenv("FIXFUSE_ENVTEST_PDBAD");
}

TEST(Env, ParallelThresholdKnob) {
  // FIXFUSE_PARALLEL_THRESHOLD: strict positive decimal, default 1.05,
  // read fresh on every call.
  ::unsetenv("FIXFUSE_PARALLEL_THRESHOLD");
  EXPECT_DOUBLE_EQ(codegen::parallelThresholdFromEnv(), 1.05);
  ::setenv("FIXFUSE_PARALLEL_THRESHOLD", "2.5", 1);
  EXPECT_DOUBLE_EQ(codegen::parallelThresholdFromEnv(), 2.5);
  ::setenv("FIXFUSE_PARALLEL_THRESHOLD", "0.1", 1);
  EXPECT_DOUBLE_EQ(codegen::parallelThresholdFromEnv(), 0.1);
  ::setenv("FIXFUSE_PARALLEL_THRESHOLD", "bogus", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(codegen::parallelThresholdFromEnv(), 1.05);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(),
            "warning: unrecognized FIXFUSE_PARALLEL_THRESHOLD value 'bogus' "
            "(expected a positive decimal <= 1024 (e.g. 1.05)); "
            "using the default profitability threshold 1.05\n");
  ::unsetenv("FIXFUSE_PARALLEL_THRESHOLD");
}

TEST(Env, ParallelThresholdSteersProfitability) {
  // An absurdly high bar turns every provably parallel candidate
  // unprofitable: the plan degrades to Serial with the explicit
  // "none profitable" reason, never to an illegal schedule.
  using namespace fixfuse::ir;
  Program p;
  p.params = {"N"};
  p.declareArray("A", {add(iv("N"), ic(2))});
  p.declareArray("B", {add(iv("N"), ic(2))});
  p.body = blockS({loopS(
      "i", ic(1), iv("N"),
      {aassign("A", {iv("i")}, add(load("B", {iv("i")}), fc(1.0)))})});
  poly::ParamContext ctx;
  ctx.addParam("N", 4, 100000);

  ::unsetenv("FIXFUSE_PARALLEL_THRESHOLD");
  EXPECT_EQ(codegen::deriveParallelPlan(p, ctx).kind,
            codegen::ParallelPlan::Kind::ParallelLoop);
  ::setenv("FIXFUSE_PARALLEL_THRESHOLD", "1000", 1);
  codegen::ParallelPlan high = codegen::deriveParallelPlan(p, ctx);
  EXPECT_EQ(high.kind, codegen::ParallelPlan::Kind::Serial);
  EXPECT_NE(high.reason.find("none profitable"), std::string::npos)
      << high.reason;
  ::unsetenv("FIXFUSE_PARALLEL_THRESHOLD");
  EXPECT_EQ(codegen::deriveParallelPlan(p, ctx).kind,
            codegen::ParallelPlan::Kind::ParallelLoop);
}

TEST(Env, WarnInvalidOncePerVarSuppressesRepeats) {
  ::testing::internal::CaptureStderr();
  env::warnInvalid("FIXFUSE_ENVTEST_ONCE", "x", "y", "z",
                   /*oncePerVar=*/true);
  env::warnInvalid("FIXFUSE_ENVTEST_ONCE", "x2", "y", "z",
                   /*oncePerVar=*/true);
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err,
            "warning: unrecognized FIXFUSE_ENVTEST_ONCE value 'x' "
            "(expected y); z\n");
  // A different variable still warns.
  ::testing::internal::CaptureStderr();
  env::warnInvalid("FIXFUSE_ENVTEST_ONCE2", "x", "y", "z",
                   /*oncePerVar=*/true);
  EXPECT_FALSE(::testing::internal::GetCapturedStderr().empty());
  // Without oncePerVar every call warns.
  ::testing::internal::CaptureStderr();
  env::warnInvalid("FIXFUSE_ENVTEST_EACH", "a", "b", "c");
  env::warnInvalid("FIXFUSE_ENVTEST_EACH", "a", "b", "c");
  err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err,
            "warning: unrecognized FIXFUSE_ENVTEST_EACH value 'a' "
            "(expected b); c\n"
            "warning: unrecognized FIXFUSE_ENVTEST_EACH value 'a' "
            "(expected b); c\n");
}

TEST(Env, WarnOncePerProcessDedupesByKey) {
  ::testing::internal::CaptureStderr();
  env::warnOncePerProcess("envtest-key-1", "first message");
  env::warnOncePerProcess("envtest-key-1", "first message again");
  env::warnOncePerProcess("envtest-key-2", "second key");
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err,
            "warning: first message\n"
            "warning: second key\n");
}

TEST(Env, WarnOncePerProcessThreadSafe) {
  // Many threads racing on the same key must produce exactly one intact
  // warning line (the dedup insert and the write share one lock).
  ::testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i)
        env::warnOncePerProcess("envtest-race-key",
                                "raced warning, printed once");
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(::testing::internal::GetCapturedStderr(),
            "warning: raced warning, printed once\n");
}

}  // namespace
}  // namespace fixfuse::support
