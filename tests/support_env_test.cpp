// Unit tests for support::env - the shared warn-and-fall-back parsing of
// the FIXFUSE_* knobs (truthiness, validated positive integers, the
// uniform warning format, once-per-var suppression). Each test uses its
// own variable name: the once-per-var set and the process environment
// both persist across tests.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "support/env.h"

namespace fixfuse::support {
namespace {

TEST(Env, ParseTruthy) {
  using env::parseTruthy;
  for (const char* v : {"1", "true", "TRUE", "Yes", "on", "ON"})
    EXPECT_EQ(parseTruthy(v), true) << v;
  for (const char* v : {"", "0", "false", "No", "off", "OFF"})
    EXPECT_EQ(parseTruthy(v), false) << v;
  for (const char* v : {"2", "yep", "enable", "tru", " 1"})
    EXPECT_EQ(parseTruthy(v), std::nullopt) << v;
}

TEST(Env, TruthyUnsetUsesFallback) {
  ::unsetenv("FIXFUSE_ENVTEST_UNSET");
  EXPECT_FALSE(env::truthy("FIXFUSE_ENVTEST_UNSET", false, "noop"));
  EXPECT_TRUE(env::truthy("FIXFUSE_ENVTEST_UNSET", true, "noop"));
}

TEST(Env, TruthyValidValuesParse) {
  ::setenv("FIXFUSE_ENVTEST_T1", "yes", 1);
  EXPECT_TRUE(env::truthy("FIXFUSE_ENVTEST_T1", false, "noop"));
  ::setenv("FIXFUSE_ENVTEST_T1", "off", 1);
  EXPECT_FALSE(env::truthy("FIXFUSE_ENVTEST_T1", true, "noop"));
  ::unsetenv("FIXFUSE_ENVTEST_T1");
}

TEST(Env, TruthyMalformedWarnsAndFallsBack) {
  ::setenv("FIXFUSE_ENVTEST_T2", "maybe", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_TRUE(env::truthy("FIXFUSE_ENVTEST_T2", true, "running anyway"));
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err,
            "warning: unrecognized FIXFUSE_ENVTEST_T2 value 'maybe' "
            "(expected 1/true/yes/on or 0/false/no/off); running anyway\n");
  ::unsetenv("FIXFUSE_ENVTEST_T2");
}

TEST(Env, PositiveIntParsesCompleteValues) {
  ::setenv("FIXFUSE_ENVTEST_P1", "12", 1);
  EXPECT_EQ(env::positiveInt("FIXFUSE_ENVTEST_P1", 100, 7, "an int", "noop"),
            12u);
  ::setenv("FIXFUSE_ENVTEST_P1", "100", 1);
  EXPECT_EQ(env::positiveInt("FIXFUSE_ENVTEST_P1", 100, 7, "an int", "noop"),
            100u);
  ::unsetenv("FIXFUSE_ENVTEST_P1");
  EXPECT_EQ(env::positiveInt("FIXFUSE_ENVTEST_P1", 100, 7, "an int", "noop"),
            7u);
}

TEST(Env, PositiveIntRejectsMalformedWithWarning) {
  // Partial parse, zero, negative, and above-max all warn and fall back.
  // (Leading whitespace is NOT here: strtol skips it, so " 12" parses -
  // the same tolerance the pre-extraction bench parser had.)
  const char* bad[] = {"12abc", "0", "-3", "101", "abc"};
  for (const char* v : bad) {
    ::setenv("FIXFUSE_ENVTEST_P2", v, 1);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(
        env::positiveInt("FIXFUSE_ENVTEST_P2", 100, 7, "an int <= 100",
                         "using the default"),
        7u)
        << v;
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(err, std::string("warning: unrecognized FIXFUSE_ENVTEST_P2 "
                               "value '") +
                       v + "' (expected an int <= 100); using the default\n")
        << v;
  }
  ::unsetenv("FIXFUSE_ENVTEST_P2");
}

TEST(Env, WarnInvalidOncePerVarSuppressesRepeats) {
  ::testing::internal::CaptureStderr();
  env::warnInvalid("FIXFUSE_ENVTEST_ONCE", "x", "y", "z",
                   /*oncePerVar=*/true);
  env::warnInvalid("FIXFUSE_ENVTEST_ONCE", "x2", "y", "z",
                   /*oncePerVar=*/true);
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err,
            "warning: unrecognized FIXFUSE_ENVTEST_ONCE value 'x' "
            "(expected y); z\n");
  // A different variable still warns.
  ::testing::internal::CaptureStderr();
  env::warnInvalid("FIXFUSE_ENVTEST_ONCE2", "x", "y", "z",
                   /*oncePerVar=*/true);
  EXPECT_FALSE(::testing::internal::GetCapturedStderr().empty());
  // Without oncePerVar every call warns.
  ::testing::internal::CaptureStderr();
  env::warnInvalid("FIXFUSE_ENVTEST_EACH", "a", "b", "c");
  env::warnInvalid("FIXFUSE_ENVTEST_EACH", "a", "b", "c");
  err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err,
            "warning: unrecognized FIXFUSE_ENVTEST_EACH value 'a' "
            "(expected b); c\n"
            "warning: unrecognized FIXFUSE_ENVTEST_EACH value 'a' "
            "(expected b); c\n");
}

}  // namespace
}  // namespace fixfuse::support
