// Unit tests for the support substrate: checked arithmetic, rationals,
// integer matrices, RNG determinism, string helpers.
#include <gtest/gtest.h>

#include <limits>

#include "support/checked.h"
#include "support/error.h"
#include "support/intmatrix.h"
#include "support/rational.h"
#include "support/rng.h"
#include "support/str.h"

namespace fixfuse {
namespace {

TEST(Checked, AddSubMulBasics) {
  EXPECT_EQ(checkedAdd(2, 3), 5);
  EXPECT_EQ(checkedSub(2, 3), -1);
  EXPECT_EQ(checkedMul(-4, 3), -12);
}

TEST(Checked, OverflowThrows) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(checkedAdd(big, 1), OverflowError);
  EXPECT_THROW(checkedMul(big, 2), OverflowError);
  EXPECT_THROW(checkedSub(std::numeric_limits<std::int64_t>::min(), 1),
               OverflowError);
  EXPECT_THROW(checkedNeg(std::numeric_limits<std::int64_t>::min()),
               OverflowError);
}

TEST(Checked, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
}

TEST(Checked, CeilDivRoundsTowardPositiveInfinity) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
}

TEST(Checked, FloorModAlwaysNonNegativeForPositiveModulus) {
  EXPECT_EQ(floorMod(7, 3), 1);
  EXPECT_EQ(floorMod(-7, 3), 2);
  EXPECT_EQ(floorMod(0, 3), 0);
}

TEST(Checked, FloorDivModIdentity) {
  for (std::int64_t a = -20; a <= 20; ++a)
    for (std::int64_t b : {-7, -3, -1, 1, 2, 5}) {
      EXPECT_EQ(floorDiv(a, b) * b + floorMod(a, b), a)
          << "a=" << a << " b=" << b;
    }
}

TEST(Checked, GcdLcm) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(0, 6), 0);
}

TEST(Rational, CanonicalForm) {
  Rational r(6, -8);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), Error);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3, 6).str(), "1/2");
  EXPECT_EQ(Rational(4, 2).str(), "2");
}

TEST(IntMatrix, IdentityAndMultiply) {
  IntMatrix id = IntMatrix::identity(3);
  IntMatrix m{{1, 2, 0}, {0, 1, 3}, {0, 0, 1}};
  EXPECT_EQ(m * id, m);
  EXPECT_EQ(id * m, m);
}

TEST(IntMatrix, ApplyVector) {
  IntMatrix skew{{1, 0, 0}, {1, 1, 0}, {0, 0, 1}};
  std::vector<std::int64_t> v{2, 3, 5};
  auto r = skew.apply(v);
  EXPECT_EQ(r, (std::vector<std::int64_t>{2, 5, 5}));
}

TEST(IntMatrix, Permutation) {
  // perm = {2,0,1} maps (x0,x1,x2) to (x2,x0,x1).
  IntMatrix p = IntMatrix::permutation({2, 0, 1});
  auto r = p.apply({10, 20, 30});
  EXPECT_EQ(r, (std::vector<std::int64_t>{30, 10, 20}));
  EXPECT_TRUE(p.isUnimodular());
}

TEST(IntMatrix, DeterminantBareiss) {
  IntMatrix m{{2, 1}, {7, 4}};
  EXPECT_EQ(m.determinant(), 1);
  IntMatrix s{{3, 1}, {6, 2}};
  EXPECT_EQ(s.determinant(), 0);
  IntMatrix t{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}};
  EXPECT_EQ(t.determinant(), -3);
}

TEST(IntMatrix, DeterminantNeedsPivotSwap) {
  IntMatrix m{{0, 1}, {1, 0}};
  EXPECT_EQ(m.determinant(), -1);
}

TEST(IntMatrix, UnimodularInverse) {
  IntMatrix skew{{1, 0}, {1, 1}};
  IntMatrix inv = skew.unimodularInverse();
  EXPECT_EQ(skew * inv, IntMatrix::identity(2));
  EXPECT_EQ(inv * skew, IntMatrix::identity(2));

  IntMatrix m{{2, 1}, {7, 4}};  // det = 1
  IntMatrix minv = m.unimodularInverse();
  EXPECT_EQ(m * minv, IntMatrix::identity(2));
}

TEST(IntMatrix, NonUnimodularInverseThrows) {
  IntMatrix m{{2, 0}, {0, 2}};
  EXPECT_FALSE(m.isUnimodular());
  EXPECT_THROW(m.unimodularInverse(), Error);
}

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoubleInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.nextDouble(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Rng, IntInRange) {
  SplitMix64 rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.nextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, "+"), "x");
}

TEST(Str, Repeat) {
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(repeat("x", 0), "");
  EXPECT_EQ(repeat("x", -1), "");
}

TEST(ErrorTypes, MessagesArePrefixed) {
  try {
    throw UnsupportedError("non-affine subscript");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported"), std::string::npos);
  }
  EXPECT_THROW(FIXFUSE_CHECK(false, "boom"), InternalError);
}

}  // namespace
}  // namespace fixfuse
