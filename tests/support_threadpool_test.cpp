// Tests for the worker-thread pool, the ordered parallel map that the
// bench sweep runner is built on, and the Json writer used for the
// machine-readable bench reports. The key property is determinism: the
// sweep output (row text and serialized JSON) must be byte-identical
// for any worker count, because results are collected by index and
// emitted in submission order.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/thread_pool.h"

namespace fixfuse::support {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++done; });
  pool.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&] { ++done; });
  pool.wait();
  EXPECT_EQ(done.load(), 1);
  pool.submit([&] { ++done; });
  pool.submit([&] { ++done; });
  pool.wait();
  EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ParallelForWave, RunsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}, std::size_t{100}}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h = 0;
      pool.parallelForWave(count, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1)
            << "threads=" << threads << " count=" << count << " i=" << i;
    }
  }
}

TEST(ParallelForWave, IsABarrierAndReusable) {
  // Returning from parallelForWave means every index finished - a second
  // wave over the same pool must observe all of the first wave's writes.
  ThreadPool pool(4);
  std::vector<int> data(64, 0);
  pool.parallelForWave(data.size(), [&](std::size_t i) { data[i] = 1; });
  for (int v : data) EXPECT_EQ(v, 1);
  pool.parallelForWave(data.size(), [&](std::size_t i) { data[i] += 1; });
  for (int v : data) EXPECT_EQ(v, 2);
}

TEST(ParallelForWave, RethrowsLowestFailingIndexAfterAttemptingAll) {
  // Deterministic error reporting: whatever the scheduling, the caller
  // sees the exception from the lowest index that threw, and every index
  // was still attempted (no silent holes in a wave).
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(50);
    for (auto& h : hits) h = 0;
    try {
      pool.parallelForWave(hits.size(), [&](std::size_t i) {
        ++hits[i];
        if (i == 31 || i == 7 || i == 44)
          throw std::runtime_error("grain " + std::to_string(i));
      });
      FAIL() << "expected the wave to rethrow (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "grain 7") << "threads=" << threads;
    }
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(ParallelForWave, CountBeyondPoolSizeCompletes) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallelForWave(1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), std::size_t{1000} * 999 / 2);
}

TEST(ParallelMapOrdered, ResultsInIndexOrderForAnyThreadCount) {
  auto square = [](std::size_t i) { return i * i; };
  std::vector<std::size_t> expected(57);
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] = square(i);
  for (unsigned threads : {1u, 2u, 3u, 8u, ThreadPool::hardwareThreads()}) {
    std::vector<std::size_t> got =
        parallelMapOrdered<std::size_t>(expected.size(), threads, square);
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelMapOrdered, HandlesEmptyAndSingleItem) {
  auto id = [](std::size_t i) { return i; };
  EXPECT_TRUE(parallelMapOrdered<std::size_t>(0, 4, id).empty());
  std::vector<std::size_t> one = parallelMapOrdered<std::size_t>(1, 4, id);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(ParallelMapOrdered, PropagatesWorkerExceptions) {
  auto boom = [](std::size_t i) -> int {
    if (i == 13) throw std::runtime_error("boom at 13");
    return static_cast<int>(i);
  };
  EXPECT_THROW(parallelMapOrdered<int>(40, 4, boom), std::runtime_error);
  // The inline (single-thread) path must propagate too.
  EXPECT_THROW(parallelMapOrdered<int>(40, 1, boom), std::runtime_error);
}

// The property the bench sweep runner relies on: concatenated row text
// and the serialized JSON document are byte-identical across thread
// counts 1, 2 and the hardware count.
TEST(ParallelMapOrdered, SweepOutputByteIdenticalAcrossThreadCounts) {
  auto makeRow = [](std::size_t i) {
    char buf[64];
    double value = std::sqrt(static_cast<double>(i)) * 1.0e9 / 7.0;
    std::snprintf(buf, sizeof buf, "row %zu value %.6f\n", i, value);
    Json j = Json::object();
    j.set("i", static_cast<std::int64_t>(i)).set("value", value);
    return std::string(buf) + j.str();
  };
  const std::size_t n = 41;
  std::vector<std::string> reference;
  for (std::size_t i = 0; i < n; ++i) reference.push_back(makeRow(i));
  std::string refDoc = std::accumulate(reference.begin(), reference.end(),
                                       std::string());
  for (unsigned threads : {1u, 2u, ThreadPool::hardwareThreads()}) {
    std::vector<std::string> rows =
        parallelMapOrdered<std::string>(n, threads, makeRow);
    std::string doc =
        std::accumulate(rows.begin(), rows.end(), std::string());
    EXPECT_EQ(doc, refDoc) << "threads=" << threads;
  }
}

TEST(Json, ScalarsAndOrderPreservingObjects) {
  Json j = Json::object();
  j.set("b", true)
      .set("i", std::int64_t{-42})
      .set("d", 1.5)
      .set("s", "hi")
      .set("nothing", Json());
  EXPECT_EQ(j.str(),
            "{\"b\":true,\"i\":-42,\"d\":1.5,\"s\":\"hi\",\"nothing\":null}");
  // Duplicate keys overwrite in place (order kept).
  j.set("i", std::int64_t{7});
  EXPECT_EQ(j.str(),
            "{\"b\":true,\"i\":7,\"d\":1.5,\"s\":\"hi\",\"nothing\":null}");
}

TEST(Json, ArraysAndNesting) {
  Json arr = Json::array();
  arr.push(1).push(2).push("x");
  Json j = Json::object();
  j.set("rows", std::move(arr));
  EXPECT_EQ(j.str(), "{\"rows\":[1,2,\"x\"]}");
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  Json j = Json::array();
  j.push(std::numeric_limits<double>::quiet_NaN())
      .push(std::numeric_limits<double>::infinity())
      .push(-std::numeric_limits<double>::infinity())
      .push(0.5);
  EXPECT_EQ(j.str(), "[null,null,null,0.5]");
}

TEST(Json, StringEscaping) {
  Json j = Json::array();
  j.push(std::string("a\"b\\c\n\t\x01"));
  EXPECT_EQ(j.str(), "[\"a\\\"b\\\\c\\n\\t\\u0001\"]");
}

TEST(Json, DoubleRoundTripPrecision) {
  // %.17g is enough to round-trip any double exactly.
  double v = 0.1 + 0.2;
  Json j = Json::array();
  j.push(v);
  std::string s = j.str();
  double back = std::strtod(s.c_str() + 1, nullptr);
  EXPECT_EQ(back, v);
}

TEST(Json, PrettyPrintIsStable) {
  Json j = Json::object();
  Json rows = Json::array();
  rows.push(1);
  j.set("name", "x").set("rows", std::move(rows));
  EXPECT_EQ(j.str(2), "{\n  \"name\": \"x\",\n  \"rows\": [\n    1\n  ]\n}");
}

}  // namespace
}  // namespace fixfuse::support
