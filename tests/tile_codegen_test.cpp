// Tests for tile-size selection (LRW / PDAT) and the C emitter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/emit_c.h"
#include "kernels/common.h"
#include "sim/cache.h"
#include "tile/selection.h"

namespace fixfuse {
namespace {

TEST(Pdat, Octane2GivesSixtyFour) {
  // sqrt((K-1)/K * 32KiB / 8B) = sqrt(2048) = 45 for K=2.
  std::int64_t t = tile::pdatTileSize(sim::CacheConfig::octane2L1());
  EXPECT_EQ(t, 45);
}

TEST(Pdat, ScalesWithCacheSize) {
  std::int64_t small = tile::pdatTileSize({8 * 1024, 32, 2});
  std::int64_t large = tile::pdatTileSize({128 * 1024, 32, 2});
  EXPECT_LT(small, large);
  EXPECT_EQ(tile::pdatTileSize({32 * 1024, 32, 4}),
            static_cast<std::int64_t>(
                std::sqrt(0.75 * 32 * 1024 / 8)));
}

TEST(Lrw, NoInterferenceForCacheFriendlyLd) {
  // ld = 512 doubles maps rows a full set apart but a small tile still
  // fits without self-interference in a 2-way cache.
  auto cfg = sim::CacheConfig::octane2L1();
  std::int64_t t = tile::lrwTileSize(cfg, /*ld=*/512);
  EXPECT_GE(t, 8);
  EXPECT_EQ(tile::selfInterferenceMisses(cfg, 512, t), 0u);
}

TEST(Lrw, PathologicalLeadingDimensionShrinksTile) {
  auto cfg = sim::CacheConfig::octane2L1();
  // 2048 doubles per row: every row maps onto the same sets, so the
  // 2-way cache cannot hold a block of more than a couple of rows; an
  // odd leading dimension away from the power-of-two spreads the rows
  // over distinct sets. This is the Wolf-Lam pathology the paper's
  // multiples-of-238 problem sizes probe.
  std::int64_t bad = tile::lrwTileSize(cfg, /*ld=*/2048);
  std::int64_t good = tile::lrwTileSize(cfg, /*ld=*/2387);
  EXPECT_LE(bad, 4);
  EXPECT_GE(good, 20);
}

TEST(Lrw, NeverBelowMinTile) {
  auto cfg = sim::CacheConfig::octane2L1();
  EXPECT_GE(tile::lrwTileSize(cfg, 4096, 8, 6), 6);
}

TEST(SelfInterference, SecondSweepHitsWhenTileFits) {
  sim::CacheConfig cfg{4096, 32, 2};  // 512 doubles capacity
  // 16x16 doubles = 2KiB with ld=64 (16KB apart rows? 64*8=512B apart).
  EXPECT_EQ(tile::selfInterferenceMisses(cfg, 64, 8), 0u);
  // A tile larger than the cache must interfere.
  EXPECT_GT(tile::selfInterferenceMisses(cfg, 64, 32), 0u);
}

// --- C emission ---------------------------------------------------------

TEST(EmitC, ContainsSignatureAndMacros) {
  auto b = kernels::buildCholesky({/*tile=*/0});
  std::string c = codegen::emitC(b.fixed, {"chol_fixed", true});
  EXPECT_NE(c.find("void chol_fixed(long N, double* A_)"), std::string::npos);
  EXPECT_NE(c.find("#define A_AT(d0, d1)"), std::string::npos);
  EXPECT_NE(c.find("sqrt("), std::string::npos);
  EXPECT_NE(c.find("for (long k = 1"), std::string::npos);
}

TEST(EmitC, AllKernelVersionsSyntaxCheck) {
  // Emit every program of every kernel and syntax-check the result with
  // the host C++ compiler (-fsyntax-only): a strong structural test of
  // the emitter across guards, selects, min/max bounds and floor-div.
  std::string path = "/tmp/fixfuse_emit_all.c";
  std::ofstream out(path);
  int idx = 0;
  for (const std::string name : {"lu", "cholesky", "qr", "jacobi"}) {
    auto b = kernels::buildKernel(name, {/*tile=*/5});
    for (const ir::Program* p : {&b.seq, &b.fixed, &b.tiled}) {
      codegen::EmitOptions opts;
      opts.functionName = name + "_v" + std::to_string(idx++);
      opts.standalone = idx == 1;  // helpers once
      out << codegen::emitC(*p, opts) << "\n";
    }
  }
  out.close();
  std::string cmd = "cc -std=c99 -fsyntax-only -Werror=implicit-function-declaration " +
                    path + " 2>/tmp/fixfuse_emit_err.txt";
  int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::ifstream err("/tmp/fixfuse_emit_err.txt");
    std::string line, all;
    while (std::getline(err, line)) all += line + "\n";
    FAIL() << "emitted C does not compile:\n" << all;
  }
}

TEST(EmitC, FloatConstantsKeepPrecision) {
  ir::Program p;
  p.declareScalar("x", ir::Type::Float);
  p.body = ir::blockS({ir::sassign("x", ir::fc(0.25))});
  std::string c = codegen::emitC(p, {"f", false});
  EXPECT_NE(c.find("0.25"), std::string::npos);
  ir::Program q;
  q.declareScalar("x", ir::Type::Float);
  q.body = ir::blockS({ir::sassign("x", ir::fc(3.0))});
  std::string cq = codegen::emitC(q, {"g", false});
  EXPECT_NE(cq.find("3.0"), std::string::npos);  // not bare "3"
}

}  // namespace
}  // namespace fixfuse
