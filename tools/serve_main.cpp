// fixfuse-serve: the fusion-as-a-service daemon and its replay client.
//
//   fixfuse-serve --socket PATH [--workers N]
//       Run the compile server in the foreground. Prints one
//       "listening on PATH" line when ready; SIGINT/SIGTERM (or a
//       `shutdown` request) drain and exit. Set FIXFUSE_CACHE_DIR to
//       give the daemon a persistent module cache that survives
//       restarts.
//
//   fixfuse-serve --ping --socket PATH
//       Exit 0 iff a daemon answers on PATH (readiness probe).
//
//   fixfuse-serve --replay --socket PATH [--fuzz N] [--synthetic N]
//                 [--passes N] [--expect-warm] [--expect-no-compiles]
//                 [--shutdown]
//       Build the deterministic request corpus and replay it (compile +
//       run per entry, every run verified bit-for-bit server-side).
//       --expect-warm requires every request of the LAST pass to be a
//       cache hit; --expect-no-compiles requires the daemon's
//       native_compiles counter to be 0 afterwards (the warm-restart
//       property: the disk tier served every module). Violations and
//       request errors exit nonzero.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/corpus.h"
#include "server/server.h"

namespace {

fixfuse::server::Server* gServer = nullptr;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--workers N]\n"
               "       %s --ping --socket PATH\n"
               "       %s --replay --socket PATH [--fuzz N] [--synthetic N]\n"
               "          [--passes N] [--expect-warm] [--expect-no-compiles]"
               " [--shutdown]\n",
               argv0, argv0, argv0);
  return 2;
}

int runDaemon(const std::string& socketPath, unsigned workers) {
  using namespace fixfuse;
  server::Server srv(engine::processEngine(),
                     {.socketPath = socketPath, .workers = workers});
  srv.start();
  gServer = &srv;
  // SIGINT/SIGTERM stop the server exactly like a `shutdown` request;
  // the handler only forwards to stop() via a detached thread spawned
  // here so the signal context itself stays minimal.
  std::signal(SIGINT, [](int) {
    std::thread([] { if (gServer) gServer->stop(); }).detach();
  });
  std::signal(SIGTERM, [](int) {
    std::thread([] { if (gServer) gServer->stop(); }).detach();
  });
  std::printf("listening on %s\n", socketPath.c_str());
  std::fflush(stdout);
  srv.wait();
  gServer = nullptr;
  std::printf("server stopped\n");
  return 0;
}

int runPing(const std::string& socketPath) {
  using namespace fixfuse;
  try {
    server::Client c(socketPath);
    server::Request req;
    req.verb = "ping";
    const server::Response resp = c.call(req);
    return resp.ok && resp.header("pong") == "1" ? 0 : 1;
  } catch (const Error&) {
    return 1;
  }
}

int runReplay(const std::string& socketPath, std::size_t fuzz,
              std::size_t synthetic, int passes, bool expectWarm,
              bool expectNoCompiles, bool sendShutdown) {
  using namespace fixfuse;
  const std::vector<server::CorpusEntry> corpus =
      server::buildCorpus(fuzz, synthetic);
  std::printf("corpus: %zu entries\n", corpus.size());
  if (corpus.empty()) {
    std::fprintf(stderr, "error: empty corpus\n");
    return 1;
  }

  bool failed = false;
  server::ReplayResult last;
  for (int pass = 0; pass < passes; ++pass) {
    server::Client c(socketPath);
    last = server::replayCorpus(c, corpus);
    std::printf(
        "pass %d: %zu requests, %zu errors, %zu cache hits, %zu runs "
        "(%zu verified, %zu on bytecode)\n",
        pass, last.requests, last.errors, last.cacheHits, last.runs,
        last.runsVerified, last.bytecodeRuns);
    if (last.errors) {
      std::fprintf(stderr, "error: first failure: %s\n",
                   last.firstError.c_str());
      failed = true;
    }
  }
  if (expectWarm && last.cacheHits != last.requests) {
    std::fprintf(stderr,
                 "error: --expect-warm: %zu/%zu requests hit the cache\n",
                 last.cacheHits, last.requests);
    failed = true;
  }
  if (last.runsVerified + last.bytecodeRuns < last.runs) {
    // Native runs are verified per-run; bytecode fallbacks ARE the
    // reference. Anything else means verification was skipped.
    std::fprintf(stderr, "error: %zu runs, only %zu verified\n", last.runs,
                 last.runsVerified);
    failed = true;
  }

  server::Client c(socketPath);
  server::Request st;
  st.verb = "stats";
  const server::Response stats = c.call(st);
  std::printf("server: requests=%s compiles=%s cache_hits=%s "
              "native_compiles=%s disk_enabled=%s disk_hits=%s\n",
              stats.header("requests").c_str(),
              stats.header("compiles").c_str(),
              stats.header("cache_hits").c_str(),
              stats.header("native_compiles").c_str(),
              stats.header("disk_enabled").c_str(),
              stats.header("disk_hits").c_str());
  if (expectNoCompiles && stats.header("native_compiles") != "0") {
    std::fprintf(stderr,
                 "error: --expect-no-compiles: server ran the host compiler "
                 "%s time(s)\n",
                 stats.header("native_compiles").c_str());
    failed = true;
  }
  if (sendShutdown) {
    server::Request sd;
    sd.verb = "shutdown";
    c.call(sd);
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socketPath;
  unsigned workers = 0;
  bool ping = false, replay = false, expectWarm = false,
       expectNoCompiles = false, sendShutdown = false;
  std::size_t fuzz = 8, synthetic = 4;
  int passes = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--socket") socketPath = next();
    else if (a == "--workers") workers = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--fuzz") fuzz = static_cast<std::size_t>(std::atoi(next()));
    else if (a == "--synthetic")
      synthetic = static_cast<std::size_t>(std::atoi(next()));
    else if (a == "--passes") passes = std::atoi(next());
    else if (a == "--ping") ping = true;
    else if (a == "--replay") replay = true;
    else if (a == "--expect-warm") expectWarm = true;
    else if (a == "--expect-no-compiles") expectNoCompiles = true;
    else if (a == "--shutdown") sendShutdown = true;
    else return usage(argv[0]);
  }
  if (socketPath.empty() || passes < 1) return usage(argv[0]);

  try {
    if (ping) return runPing(socketPath);
    if (replay)
      return runReplay(socketPath, fuzz, synthetic, passes, expectWarm,
                       expectNoCompiles, sendShutdown);
    return runDaemon(socketPath, workers);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
